// ExoPlayer v2.10 behavioural model (§3.2).
//
// DASH: joint audio+video adaptation over the *predetermined combinations*
// built from per-track declared bitrates (players/exo_combinations.h), with
// AdaptiveTrackSelection's parameters: the bandwidth estimate is multiplied
// by bandwidthFraction = 0.75, switching up requires >= 10 s of buffer and
// switching down is suppressed above 25 s of buffer.
//
// HLS: the same adaptation code runs, but the top-level master playlist
// carries no per-track audio bitrates, so the model (faithfully) assumes all
// audio renditions are equal quality — it pins the FIRST listed rendition
// for the whole session — and prices each video track at the aggregate
// BANDWIDTH of the first variant containing it (an overestimate). This
// reproduces the paper's Fig 3 behaviours, including selecting combinations
// that are not in the manifest.
//
// Downloading is serial with chunk-level audio/video synchronization (the
// behaviour §3.5 singles out as desirable in ExoPlayer).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "players/estimators.h"
#include "sim/player.h"

namespace demuxabr {

struct ExoPlayerConfig {
  double bandwidth_fraction = 0.75;
  double min_duration_for_quality_increase_s = 10.0;
  double max_duration_for_quality_decrease_s = 25.0;
  /// Stop fetching when both buffers exceed this (DEFAULT_MAX_BUFFER).
  double max_buffer_s = 30.0;
  ExoMeterConfig meter{};
};

class ExoPlayerModel : public PlayerAdapter {
 public:
  explicit ExoPlayerModel(ExoPlayerConfig config = {});

  [[nodiscard]] std::string name() const override;
  void start(const ManifestView& view) override;
  [[nodiscard]] int max_concurrent_downloads() const override { return 1; }
  std::optional<DownloadRequest> next_request(const PlayerContext& ctx) override;
  void on_chunk_complete(const ChunkCompletion& completion,
                         const PlayerContext& ctx) override;
  [[nodiscard]] double bandwidth_estimate_kbps() const override;

  /// The combination ladder the model adapts over (for tests/inspection).
  [[nodiscard]] const std::vector<ComboView>& combinations() const { return combos_; }
  [[nodiscard]] std::size_t current_combination_index() const { return current_; }

 private:
  void update_selection(const PlayerContext& ctx);

  ExoPlayerConfig config_;
  ExoBandwidthMeter meter_;
  Protocol protocol_ = Protocol::kDash;
  std::vector<ComboView> combos_;  ///< ascending bandwidth
  std::size_t current_ = 0;
  bool selection_initialized_ = false;
};

}  // namespace demuxabr
