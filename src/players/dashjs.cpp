#include "players/dashjs.h"

#include <algorithm>
#include <cassert>

namespace demuxabr {

DashJsPlayerModel::DashJsPlayerModel(DashJsConfig config) : config_(config) {}

void DashJsPlayerModel::start(const ManifestView& view) {
  // dash.js is a DASH-only player; it needs per-track declared bitrates.
  assert(view.protocol == Protocol::kDash);
  if (view.chunk_duration_s > 0.0) chunk_duration_s_ = view.chunk_duration_s;
  for (MediaType type : {MediaType::kAudio, MediaType::kVideo}) {
    Pipeline& p = pipeline(type);
    p = Pipeline{};
    std::vector<TrackView> tracks = view.tracks(type);
    std::stable_sort(tracks.begin(), tracks.end(),
                     [](const TrackView& a, const TrackView& b) {
                       return a.declared_kbps < b.declared_kbps;
                     });
    for (const TrackView& t : tracks) {
      assert(t.bitrate_known);
      p.track_ids.push_back(t.id);
      p.bitrates_kbps.push_back(t.declared_kbps);
    }
    assert(!p.track_ids.empty());
    p.estimator = WindowThroughputEstimator(config_.throughput_window, 0.0);
    p.bola = std::make_unique<Bola>(p.bitrates_kbps, config_.stable_buffer_s);
    p.state = RuleState::kThroughput;
    p.current = 0;  // dash.js starts at the lowest quality
  }
}

std::size_t DashJsPlayerModel::adapt(Pipeline& p, double buffer_s) {
  // THROUGHPUT rule: highest track under safety * estimate; lowest track
  // until the estimator has samples.
  std::size_t tput_choice = 0;
  if (p.estimator.has_samples()) {
    const double budget = config_.throughput_safety_factor * p.estimator.estimate_kbps();
    for (std::size_t i = 0; i < p.bitrates_kbps.size(); ++i) {
      if (p.bitrates_kbps[i] <= budget) tput_choice = i;
    }
  }
  const std::size_t bola_choice = p.bola->choose(buffer_s);

  // DYNAMIC switching (§3.4 / [22]).
  if (p.state == RuleState::kThroughput) {
    if (buffer_s >= config_.switch_to_bola_s && bola_choice >= tput_choice) {
      p.state = RuleState::kBola;
    }
  } else {
    if (buffer_s < config_.switch_to_tput_s && bola_choice < tput_choice) {
      p.state = RuleState::kThroughput;
    }
  }
  p.current = p.state == RuleState::kBola ? bola_choice : tput_choice;
  return p.current;
}

std::optional<DownloadRequest> DashJsPlayerModel::next_request(const PlayerContext& ctx) {
  // Two independent fetch pipelines; no cross-type synchronization at all
  // (the §3.4/§3.5 finding). Each type fetches while its own buffer is below
  // its own target.
  struct Candidate {
    MediaType type;
    double buffer;
  };
  // Fixed array, one slot per media type: this per-poll decision must stay
  // off the heap (it runs inside the fleet engines' drain loop).
  Candidate candidates[2];
  int candidate_count = 0;
  for (MediaType type : {MediaType::kAudio, MediaType::kVideo}) {
    if (ctx.downloading(type)) continue;
    if (ctx.next_chunk(type) >= ctx.total_chunks) continue;
    const Pipeline& p = pipeline(type);
    const bool at_top = p.current + 1 == p.track_ids.size();
    const double target = at_top ? config_.top_quality_buffer_s : config_.stable_buffer_s;
    if (ctx.buffer_s(type) >= target) continue;
    candidates[candidate_count++] = {type, ctx.buffer_s(type)};
  }
  if (candidate_count == 0) return std::nullopt;
  // Historical stable_sort on buffer: video (second slot) wins only when
  // strictly lower.
  const MediaType type =
      candidate_count == 2 && candidates[1].buffer < candidates[0].buffer
          ? candidates[1].type
          : candidates[0].type;
  Pipeline& p = pipeline(type);
  const std::size_t index = adapt(p, ctx.buffer_s(type));

  DownloadRequest request;
  request.type = type;
  request.track_id = p.track_ids[index];
  request.chunk_index = ctx.next_chunk(type);
  // Arm the abandonment tracker for the new in-flight chunk.
  p.inflight_expected_kbps = p.bitrates_kbps[index];
  p.inflight_elapsed_s = 0.0;
  p.inflight_bytes = 0;
  return request;
}

bool DashJsPlayerModel::should_abandon(const ProgressSample& sample,
                                       const PlayerContext& ctx) {
  (void)ctx;
  if (!config_.enable_abandonment) return false;
  Pipeline& p = pipeline(sample.type);
  p.inflight_elapsed_s += sample.duration_s();
  p.inflight_bytes += sample.bytes;
  if (p.current == 0) return false;  // nothing lower to fall back to
  if (p.inflight_elapsed_s < config_.abandon_grace_s) return false;
  if (p.inflight_bytes <= 0 || p.inflight_expected_kbps <= 0.0) return false;
  const double throughput_kbps = static_cast<double>(p.inflight_bytes) * 8.0 / 1000.0 /
                                 p.inflight_elapsed_s;
  const double projected_s =
      p.inflight_expected_kbps * chunk_duration_s_ / throughput_kbps;
  if (projected_s <= config_.abandon_multiplier * chunk_duration_s_) return false;
  // Abandon: record the observed throughput so the next selection drops.
  p.estimator.add_chunk_throughput(throughput_kbps);
  p.inflight_expected_kbps = 0.0;
  p.inflight_elapsed_s = 0.0;
  p.inflight_bytes = 0;
  return true;
}

void DashJsPlayerModel::on_chunk_complete(const ChunkCompletion& completion,
                                          const PlayerContext& ctx) {
  (void)ctx;
  // Each pipeline's estimator sees only its own media type (§3.4).
  Pipeline& p = pipeline(completion.type);
  p.estimator.add_chunk_throughput(completion.throughput_kbps());
  p.inflight_expected_kbps = 0.0;
  p.inflight_elapsed_s = 0.0;
  p.inflight_bytes = 0;
}

double DashJsPlayerModel::bandwidth_estimate_kbps() const {
  return video_.estimator.estimate_kbps();
}

double DashJsPlayerModel::estimate_kbps(MediaType type) const {
  return pipeline(type).estimator.estimate_kbps();
}

}  // namespace demuxabr
