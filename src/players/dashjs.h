// dash.js v2.9.3 behavioural model (§3.4).
//
// The defining property the paper dissects: audio and video are adapted
// *completely independently*. Each media type runs its own DYNAMIC rule
// (THROUGHPUT below the low buffer threshold, BOLA above the high one), its
// own bandwidth estimator fed only by its own downloads, and its own fetch
// pipeline — so the two buffers drift apart (Fig 5(b)) and combinations like
// V2+A3 emerge even when V3+A2 would fit the same bandwidth (Fig 5(a)).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "players/bola.h"
#include "players/estimators.h"
#include "sim/player.h"

namespace demuxabr {

struct DashJsConfig {
  /// dash.js's DEFAULT_MIN_BUFFER_TIME_FAST_SWITCH (fastSwitch is on by
  /// default in v2.9): the fetch target below top quality.
  double stable_buffer_s = 20.0;
  double top_quality_buffer_s = 30.0;    ///< fetch target at top quality
  double throughput_safety_factor = 0.9;
  std::size_t throughput_window = 4;
  /// DYNAMIC switches to BOLA when buffer >= switch_to_bola_s and BOLA's
  /// choice is at least THROUGHPUT's; back when buffer < switch_to_tput_s
  /// and BOLA's choice is lower (§3.4).
  double switch_to_bola_s = 12.0;
  double switch_to_tput_s = 6.0;
  /// AbandonRequestsRule: cancel a chunk whose projected download time
  /// exceeds abandon_multiplier x chunk duration (judged after a grace
  /// period), feeding the measured throughput into the estimator.
  bool enable_abandonment = true;
  double abandon_grace_s = 0.5;
  double abandon_multiplier = 1.8;
};

class DashJsPlayerModel : public PlayerAdapter {
 public:
  explicit DashJsPlayerModel(DashJsConfig config = {});

  [[nodiscard]] std::string name() const override { return "dashjs"; }
  void start(const ManifestView& view) override;
  [[nodiscard]] int max_concurrent_downloads() const override { return 2; }
  std::optional<DownloadRequest> next_request(const PlayerContext& ctx) override;
  bool should_abandon(const ProgressSample& sample, const PlayerContext& ctx) override;
  void on_chunk_complete(const ChunkCompletion& completion,
                         const PlayerContext& ctx) override;
  /// Reports the video-pipeline estimate (each type has its own).
  [[nodiscard]] double bandwidth_estimate_kbps() const override;
  [[nodiscard]] double estimate_kbps(MediaType type) const;

  /// Current ABR state of one pipeline (for tests).
  enum class RuleState { kThroughput, kBola };
  [[nodiscard]] RuleState rule_state(MediaType type) const {
    return pipeline(type).state;
  }
  [[nodiscard]] std::size_t current_index(MediaType type) const {
    return pipeline(type).current;
  }

 private:
  struct Pipeline {
    std::vector<std::string> track_ids;  ///< ascending declared bitrate
    std::vector<double> bitrates_kbps;
    WindowThroughputEstimator estimator{4, 0.0};
    std::unique_ptr<Bola> bola;
    RuleState state = RuleState::kThroughput;
    std::size_t current = 0;
    // In-flight chunk tracking for the abandonment rule.
    double inflight_expected_kbps = 0.0;
    double inflight_elapsed_s = 0.0;
    std::int64_t inflight_bytes = 0;
  };

  [[nodiscard]] Pipeline& pipeline(MediaType type) {
    return type == MediaType::kAudio ? audio_ : video_;
  }
  [[nodiscard]] const Pipeline& pipeline(MediaType type) const {
    return type == MediaType::kAudio ? audio_ : video_;
  }

  /// Run the DYNAMIC rule for one pipeline; updates state and returns the
  /// chosen track index.
  std::size_t adapt(Pipeline& p, double buffer_s);

  DashJsConfig config_;
  Pipeline audio_;
  Pipeline video_;
  double chunk_duration_s_ = 4.0;
};

}  // namespace demuxabr
