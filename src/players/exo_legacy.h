// ExoPlayer pre-v2.10 behavioural model (§3.2): "for multiple demuxed video
// and audio tracks, it selected a fixed audio track and used it throughout
// the session without any audio rate adaptation."
//
// Video runs the familiar AdaptiveTrackSelection (bandwidth fraction 0.75,
// buffer-gated switches) over the *video tracks alone*; audio is pinned to a
// fixed rendition (by default the first listed / lowest). The model exists
// as the historical baseline: it shows why the paper calls the v2.10 joint
// adaptation an improvement, and what "no audio adaptation" costs when the
// audio track is not negligible (§4.2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "players/estimators.h"
#include "sim/player.h"

namespace demuxabr {

struct ExoLegacyConfig {
  double bandwidth_fraction = 0.75;
  double min_duration_for_quality_increase_s = 10.0;
  double max_duration_for_quality_decrease_s = 25.0;
  double max_buffer_s = 30.0;
  /// Which audio rendition to pin: index into the manifest's audio list.
  /// The real player's choice depended on track-group ordering; 0 models
  /// the common "first listed" outcome.
  std::size_t fixed_audio_index = 0;
  ExoMeterConfig meter{};
};

class ExoLegacyPlayerModel : public PlayerAdapter {
 public:
  explicit ExoLegacyPlayerModel(ExoLegacyConfig config = {});

  [[nodiscard]] std::string name() const override { return "exoplayer-legacy"; }
  void start(const ManifestView& view) override;
  [[nodiscard]] int max_concurrent_downloads() const override { return 1; }
  std::optional<DownloadRequest> next_request(const PlayerContext& ctx) override;
  void on_chunk_complete(const ChunkCompletion& completion,
                         const PlayerContext& ctx) override;
  [[nodiscard]] double bandwidth_estimate_kbps() const override;

  [[nodiscard]] const std::string& fixed_audio_id() const { return audio_id_; }
  [[nodiscard]] std::size_t current_video_index() const { return current_; }

 private:
  void update_selection(const PlayerContext& ctx);

  ExoLegacyConfig config_;
  ExoBandwidthMeter meter_;
  std::string audio_id_;
  std::vector<std::string> video_ids_;     ///< ascending declared bitrate
  std::vector<double> video_kbps_;         ///< declared; falls back to variant
                                           ///< aggregates under HLS
  std::size_t current_ = 0;
  bool selection_initialized_ = false;
};

}  // namespace demuxabr
