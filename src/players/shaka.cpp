#include "players/shaka.h"

#include <algorithm>
#include <cassert>

namespace demuxabr {

ShakaPlayerModel::ShakaPlayerModel(ShakaConfig config)
    : config_(config), estimator_(config.estimator) {}

std::string ShakaPlayerModel::name() const {
  return protocol_ == Protocol::kDash ? "shaka-dash" : "shaka-hls";
}

void ShakaPlayerModel::start(const ManifestView& view) {
  protocol_ = view.protocol;
  estimator_ = ShakaBandwidthEstimator(config_.estimator);
  combos_.clear();

  if (view.has_combination_list) {
    combos_ = view.combos_sorted();
  } else {
    // DASH: the player creates every audio x video combination when parsing
    // the manifest (§3.3), priced at the sum of declared bitrates.
    for (const TrackView& video : view.video_tracks) {
      for (const TrackView& audio : view.audio_tracks) {
        assert(video.bitrate_known && audio.bitrate_known);
        ComboView combo;
        combo.video_id = video.id;
        combo.audio_id = audio.id;
        combo.video_kbps = video.declared_kbps;
        combo.audio_kbps = audio.declared_kbps;
        combo.bandwidth_kbps = video.declared_kbps + audio.declared_kbps;
        combo.avg_bandwidth_kbps = combo.bandwidth_kbps;
        combos_.push_back(std::move(combo));
      }
    }
    std::stable_sort(combos_.begin(), combos_.end(),
                     [](const ComboView& a, const ComboView& b) {
                       return a.bandwidth_kbps < b.bandwidth_kbps;
                     });
  }
  assert(!combos_.empty());
}

std::size_t ShakaPlayerModel::select_for_estimate(double estimate_kbps) const {
  // Highest combination whose bandwidth requirement fits the estimate;
  // the lowest one when nothing fits. No hysteresis (§3.3).
  std::size_t choice = 0;
  for (std::size_t i = 0; i < combos_.size(); ++i) {
    if (combos_[i].bandwidth_kbps <= estimate_kbps) choice = i;
  }
  return choice;
}

std::optional<DownloadRequest> ShakaPlayerModel::next_request(const PlayerContext& ctx) {
  // Independent per-type pipelines, both filling to the bufferingGoal.
  struct Candidate {
    MediaType type;
    double buffer;
  };
  // Fixed array, one slot per media type: this per-poll decision must stay
  // off the heap (it runs inside the fleet engines' drain loop).
  Candidate candidates[2];
  int candidate_count = 0;
  for (MediaType type : {MediaType::kAudio, MediaType::kVideo}) {
    if (ctx.downloading(type)) continue;
    if (ctx.next_chunk(type) >= ctx.total_chunks) continue;
    if (ctx.buffer_s(type) >= config_.buffering_goal_s) continue;
    candidates[candidate_count++] = {type, ctx.buffer_s(type)};
  }
  if (candidate_count == 0) return std::nullopt;
  // Historical stable_sort on buffer: video (second slot) wins only when
  // strictly lower.
  const MediaType type =
      candidate_count == 2 && candidates[1].buffer < candidates[0].buffer
          ? candidates[1].type
          : candidates[0].type;

  const ComboView& combo = combos_[select_for_estimate(estimator_.estimate_kbps())];
  DownloadRequest request;
  request.type = type;
  request.track_id = type == MediaType::kVideo ? combo.video_id : combo.audio_id;
  request.chunk_index = ctx.next_chunk(type);
  return request;
}

void ShakaPlayerModel::on_progress(const ProgressSample& sample) {
  estimator_.on_progress(sample);
}

double ShakaPlayerModel::bandwidth_estimate_kbps() const {
  return estimator_.estimate_kbps();
}

}  // namespace demuxabr
