#include "players/exoplayer.h"

#include <algorithm>
#include <cassert>

#include "players/exo_combinations.h"
#include "util/logging.h"

namespace demuxabr {

ExoPlayerModel::ExoPlayerModel(ExoPlayerConfig config)
    : config_(config), meter_(config.meter) {}

std::string ExoPlayerModel::name() const {
  return protocol_ == Protocol::kDash ? "exoplayer-dash" : "exoplayer-hls";
}

void ExoPlayerModel::start(const ManifestView& view) {
  protocol_ = view.protocol;
  combos_.clear();
  current_ = 0;
  selection_initialized_ = false;

  if (view.protocol == Protocol::kDash) {
    // Predetermined combinations from per-track declared bitrates.
    combos_ = exo_predetermined_combinations(view);
    return;
  }

  // HLS: no per-track audio bitrate in the top-level manifest, so all audio
  // renditions are assumed equal quality -> the first listed one is used
  // throughout (§3.2). Each video track is priced at the aggregate BANDWIDTH
  // of the first variant that contains it.
  assert(!view.audio_tracks.empty());
  const std::string fixed_audio = view.audio_tracks.front().id;
  for (const TrackView& video : view.video_tracks) {
    const ComboView* first_variant = nullptr;
    for (const ComboView& combo : view.combos) {  // manifest order
      if (combo.video_id == video.id) {
        first_variant = &combo;
        break;
      }
    }
    if (first_variant == nullptr) continue;  // video track never referenced
    ComboView combo;
    combo.video_id = video.id;
    combo.audio_id = fixed_audio;  // NOT necessarily the variant's audio!
    combo.bandwidth_kbps = first_variant->bandwidth_kbps;
    combo.avg_bandwidth_kbps = first_variant->avg_bandwidth_kbps;
    combos_.push_back(std::move(combo));
  }
  std::stable_sort(combos_.begin(), combos_.end(),
                   [](const ComboView& a, const ComboView& b) {
                     return a.bandwidth_kbps < b.bandwidth_kbps;
                   });
  assert(!combos_.empty());
}

void ExoPlayerModel::update_selection(const PlayerContext& ctx) {
  const double allocatable = config_.bandwidth_fraction * meter_.estimate_kbps();
  std::size_t ideal = 0;
  for (std::size_t i = 0; i < combos_.size(); ++i) {
    if (combos_[i].bandwidth_kbps <= allocatable) ideal = i;
  }
  if (!selection_initialized_) {
    current_ = ideal;
    selection_initialized_ = true;
    return;
  }
  const double buffered = std::min(ctx.audio_buffer_s, ctx.video_buffer_s);
  if (ideal > current_) {
    // Switch up only with enough buffer cushion.
    if (buffered >= config_.min_duration_for_quality_increase_s) current_ = ideal;
  } else if (ideal < current_) {
    // Keep the higher quality when the buffer is already comfortable.
    if (buffered < config_.max_duration_for_quality_decrease_s) current_ = ideal;
  }
}

std::optional<DownloadRequest> ExoPlayerModel::next_request(const PlayerContext& ctx) {
  // Chunk-level A/V synchronization: advance whichever media type is behind,
  // one chunk at a time.
  struct Candidate {
    MediaType type;
    int next_chunk;
    double buffer;
  };
  // At most one candidate per media type: a fixed array keeps this per-event
  // decision off the heap (it runs once per drain poll across the fleet).
  Candidate candidates[2];
  int candidate_count = 0;
  for (MediaType type : {MediaType::kVideo, MediaType::kAudio}) {
    if (ctx.downloading(type)) continue;
    if (ctx.next_chunk(type) >= ctx.total_chunks) continue;
    if (ctx.buffer_s(type) >= config_.max_buffer_s) continue;
    candidates[candidate_count++] = {type, ctx.next_chunk(type), ctx.buffer_s(type)};
  }
  if (candidate_count == 0) return std::nullopt;
  // The historical stable_sort over {video, audio}: audio wins only when
  // strictly behind (earlier chunk, or same chunk with less buffer).
  const Candidate& chosen =
      candidate_count == 2 && (candidates[1].next_chunk < candidates[0].next_chunk ||
                               (candidates[1].next_chunk == candidates[0].next_chunk &&
                                candidates[1].buffer < candidates[0].buffer))
          ? candidates[1]
          : candidates[0];

  update_selection(ctx);
  const ComboView& combo = combos_[current_];
  DownloadRequest request;
  request.type = chosen.type;
  request.track_id = chosen.type == MediaType::kVideo ? combo.video_id : combo.audio_id;
  request.chunk_index = chosen.next_chunk;
  return request;
}

void ExoPlayerModel::on_chunk_complete(const ChunkCompletion& completion,
                                       const PlayerContext& ctx) {
  (void)ctx;
  meter_.on_transfer_end(completion.bytes, completion.duration_s());
}

double ExoPlayerModel::bandwidth_estimate_kbps() const { return meter_.estimate_kbps(); }

}  // namespace demuxabr
