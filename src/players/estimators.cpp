#include "players/estimators.h"

#include <algorithm>
#include <cmath>

namespace demuxabr {

ShakaBandwidthEstimator::ShakaBandwidthEstimator(ShakaEstimatorConfig config)
    : config_(config),
      fast_(config.fast_half_life_s),
      slow_(config.slow_half_life_s) {}

void ShakaBandwidthEstimator::on_progress(const ProgressSample& sample) {
  if (sample.duration_s() <= 0.0) return;
  // The filter rule the paper dissects: intervals that moved fewer than
  // 16 KB are not considered valid throughput samples (§3.3).
  if (sample.bytes < config_.min_bytes) {
    ++rejected_;
    return;
  }
  ++accepted_;
  const double kbps = sample.throughput_kbps();
  fast_.add(sample.duration_s(), kbps);
  slow_.add(sample.duration_s(), kbps);
}

bool ShakaBandwidthEstimator::has_good_estimate() const {
  return fast_.total_weight() >= config_.min_total_weight_s;
}

double ShakaBandwidthEstimator::estimate_kbps() const {
  if (!has_good_estimate()) return config_.default_estimate_kbps;
  return std::min(fast_.estimate(), slow_.estimate());
}

ExoBandwidthMeter::ExoBandwidthMeter(ExoMeterConfig config)
    : config_(config), percentile_(config.max_weight) {}

void ExoBandwidthMeter::on_transfer_end(std::int64_t bytes, double duration_s) {
  if (duration_s <= 0.0 || bytes <= 0) return;
  const double kbps = static_cast<double>(bytes) * 8.0 / 1000.0 / duration_s;
  const double weight = std::sqrt(static_cast<double>(bytes));
  percentile_.add(weight, kbps);
}

double ExoBandwidthMeter::estimate_kbps() const {
  return percentile_.percentile(config_.percentile, config_.initial_estimate_kbps);
}

WindowThroughputEstimator::WindowThroughputEstimator(std::size_t window,
                                                     double default_estimate_kbps)
    : window_(window), default_estimate_kbps_(default_estimate_kbps) {}

void WindowThroughputEstimator::add_chunk_throughput(double kbps) {
  if (kbps > 0.0) window_.add(kbps);
}

double WindowThroughputEstimator::estimate_kbps() const {
  if (window_.size() == 0) return default_estimate_kbps_;
  return window_.mean();
}

AggregateThroughputEstimator::AggregateThroughputEstimator(double fast_half_life_s,
                                                           double slow_half_life_s)
    : fast_(fast_half_life_s), slow_(slow_half_life_s) {}

void AggregateThroughputEstimator::on_progress(const ProgressSample& sample) {
  if (sample.duration_s() <= 0.0) return;
  if (sample.t1 != interval_t1_) {
    flush();
    interval_t0_ = sample.t0;
    interval_t1_ = sample.t1;
    interval_bytes_ = 0;
  }
  interval_t0_ = std::min(interval_t0_, sample.t0);
  interval_bytes_ += sample.bytes;
}

void AggregateThroughputEstimator::flush() {
  if (interval_t1_ <= interval_t0_ || interval_bytes_ <= 0) return;
  const double duration = interval_t1_ - interval_t0_;
  const double kbps = static_cast<double>(interval_bytes_) * 8.0 / 1000.0 / duration;
  fast_.add(duration, kbps);
  slow_.add(duration, kbps);
  interval_bytes_ = 0;
  interval_t1_ = -1.0;
}

bool AggregateThroughputEstimator::has_estimate() const {
  return fast_.total_weight() > 0.0 || interval_bytes_ > 0;
}

double AggregateThroughputEstimator::estimate_kbps() const {
  if (fast_.total_weight() <= 0.0) {
    // Only a partial interval so far: report its raw throughput.
    if (interval_bytes_ > 0 && interval_t1_ > interval_t0_) {
      return static_cast<double>(interval_bytes_) * 8.0 / 1000.0 /
             (interval_t1_ - interval_t0_);
    }
    return 0.0;
  }
  return std::min(fast_.estimate(), slow_.estimate());
}

}  // namespace demuxabr
