#include "players/bola.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace demuxabr {
namespace {
// dash.js BolaRule constants.
constexpr double kMinimumBufferS = 10.0;
constexpr double kBufferPerLevelS = 2.0;
}  // namespace

Bola::Bola(std::vector<double> bitrates_kbps, double stable_buffer_s)
    : bitrates_kbps_(std::move(bitrates_kbps)) {
  assert(!bitrates_kbps_.empty());
  assert(std::is_sorted(bitrates_kbps_.begin(), bitrates_kbps_.end()));
  assert(bitrates_kbps_.front() > 0.0);

  utilities_.reserve(bitrates_kbps_.size());
  for (double b : bitrates_kbps_) {
    utilities_.push_back(std::log(b / bitrates_kbps_.front()));
  }
  // Shift so the lowest track has utility exactly 1 (dash.js normalization).
  const double shift = 1.0 - utilities_.front();
  for (double& u : utilities_) u += shift;

  buffer_target_s_ = std::max(
      stable_buffer_s,
      kMinimumBufferS + kBufferPerLevelS * static_cast<double>(bitrates_kbps_.size()));
  if (bitrates_kbps_.size() == 1) {
    gp_ = 1.0;  // degenerate single-track ladder
  } else {
    gp_ = (utilities_.back() - 1.0) / (buffer_target_s_ / kMinimumBufferS - 1.0);
  }
  vp_ = kMinimumBufferS / gp_;
}

double Bola::score(std::size_t index, double buffer_s) const {
  return (vp_ * (utilities_[index] + gp_) - buffer_s) / bitrates_kbps_[index];
}

std::size_t Bola::choose(double buffer_s) const {
  std::size_t best = 0;
  double best_score = score(0, buffer_s);
  for (std::size_t i = 1; i < bitrates_kbps_.size(); ++i) {
    const double s = score(i, buffer_s);
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

bool Bola::prefers_waiting(double buffer_s) const {
  for (std::size_t i = 0; i < bitrates_kbps_.size(); ++i) {
    if (score(i, buffer_s) > 0.0) return false;
  }
  return true;
}

}  // namespace demuxabr
