// Shaka Player v2.5 behavioural model (§3.3).
//
// Bandwidth estimation: per-interval (0.125 s) throughput samples from each
// flow separately, discarded unless >= 16 KB moved in the interval, fed to a
// dual half-life EWMA with a 500 kbps default — so (a) concurrent audio and
// video downloads over a shared bottleneck halve every accepted sample, and
// (b) at moderate link rates *no* sample passes the filter and the estimate
// stays pinned at the default (Fig 4(a)); at time-varying rates only the
// high phase passes, overestimating the average (Fig 4(b)).
//
// Selection: simple rate-based — the combination with the highest declared
// bandwidth not exceeding the estimate, re-evaluated every chunk with no
// hysteresis, which makes selections flutter when many combinations have
// nearby bandwidth requirements (§3.3's fluctuation finding).
//
// Under DASH (no combination list), the model builds ALL |V| x |A|
// combinations from per-track declared bitrates, as the real player does
// when parsing an MPD.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "players/estimators.h"
#include "sim/player.h"

namespace demuxabr {

struct ShakaConfig {
  double buffering_goal_s = 10.0;  ///< shaka default bufferingGoal
  ShakaEstimatorConfig estimator{};
};

class ShakaPlayerModel : public PlayerAdapter {
 public:
  explicit ShakaPlayerModel(ShakaConfig config = {});

  [[nodiscard]] std::string name() const override;
  void start(const ManifestView& view) override;
  [[nodiscard]] int max_concurrent_downloads() const override { return 2; }
  std::optional<DownloadRequest> next_request(const PlayerContext& ctx) override;
  void on_progress(const ProgressSample& sample) override;
  [[nodiscard]] double bandwidth_estimate_kbps() const override;

  [[nodiscard]] const std::vector<ComboView>& combinations() const { return combos_; }
  /// The rate-based choice at a given estimate (exposed for the §3.3
  /// fluctuation analysis and tests).
  [[nodiscard]] std::size_t select_for_estimate(double estimate_kbps) const;

 private:
  ShakaConfig config_;
  ShakaBandwidthEstimator estimator_;
  Protocol protocol_ = Protocol::kDash;
  std::vector<ComboView> combos_;  ///< ascending bandwidth
};

}  // namespace demuxabr
