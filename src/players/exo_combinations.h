// ExoPlayer's predetermined audio/video combinations (§3.2, DASH).
//
// Reimplements the switch-point construction of ExoPlayer 2.10's
// AdaptiveTrackSelection.getAllocationCheckpoints():
//   1. take log bitrates so all rate-update steps are treated equally;
//   2. for each renderer (audio, video), place the switch point of the
//      upgrade k -> k+1 at the normalized log-bitrate MIDPOINT
//      (log b_k + log b_{k+1}) / 2, scaled into [0, 1] by the renderer's
//      total log-bitrate span;
//   3. start both renderers at their lowest track and apply upgrades in
//      ascending switch-point order — producing |V| + |A| - 1 combinations
//      where adjacent combinations differ in exactly one component.
//
// Verified against all three ladders the paper reports: Table 1 audio
// (A1..A3), audio set B and audio set C (§3.2) reproduce the exact
// published sequences.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "manifest/view.h"
#include "media/combination.h"

namespace demuxabr {

/// Core algorithm on plain bitrate arrays (ascending order required).
/// Returns the upgrade path as (video_index, audio_index) pairs, starting at
/// (0,0) and ending at (V-1, A-1).
std::vector<std::pair<std::size_t, std::size_t>> exo_allocation_path(
    const std::vector<double>& video_kbps, const std::vector<double>& audio_kbps);

/// Predetermined combinations for a bitrate ladder, using declared bitrates
/// (what a DASH manifest exposes).
std::vector<AvCombination> exo_predetermined_combinations(const BitrateLadder& ladder);

/// Predetermined combinations from a DASH ManifestView (what the player
/// actually sees). Combination bandwidths are sums of declared bitrates.
std::vector<ComboView> exo_predetermined_combinations(const ManifestView& view);

}  // namespace demuxabr
