// Bandwidth estimators modelled after the three players the paper studies,
// plus the aggregate estimator the §4.2 best-practice player uses.
//
//  * ShakaBandwidthEstimator — per-interval (delta = 0.125 s) samples,
//    discarded unless >= 16 KB was transferred in the interval; dual
//    half-life EWMA (fast 2 s / slow 5 s), estimate = min(fast, slow);
//    500 kbps default until enough weight accumulates. (§3.3)
//  * ExoBandwidthMeter — weighted sliding percentile (weight = sqrt(bytes),
//    median) over completed transfers; 1 Mbps initial estimate. (§3.2)
//  * WindowThroughputEstimator — dash.js ThroughputRule: arithmetic mean of
//    the last N (default 4) chunk throughputs of ONE media type. (§3.4)
//  * AggregateThroughputEstimator — sums concurrent audio+video progress in
//    each interval before sampling, so a shared bottleneck is measured as
//    one pipe (the fix for Shaka's under-estimation). (§4.2)
#pragma once

#include <cstdint>

#include "sim/player.h"
#include "util/stats.h"

namespace demuxabr {

struct ShakaEstimatorConfig {
  double default_estimate_kbps = 500.0;
  std::int64_t min_bytes = 16 * 1024;  ///< sample filter threshold
  double fast_half_life_s = 2.0;
  double slow_half_life_s = 5.0;
  /// Accumulated sample weight (seconds) required before the estimate is
  /// trusted over the default.
  double min_total_weight_s = 0.5;
};

class ShakaBandwidthEstimator {
 public:
  explicit ShakaBandwidthEstimator(ShakaEstimatorConfig config = {});

  /// Feed one per-interval progress sample (from one flow). Applies the
  /// >= 16 KB filter internally.
  void on_progress(const ProgressSample& sample);

  [[nodiscard]] double estimate_kbps() const;
  [[nodiscard]] bool has_good_estimate() const;
  [[nodiscard]] std::size_t accepted_samples() const { return accepted_; }
  [[nodiscard]] std::size_t rejected_samples() const { return rejected_; }

 private:
  ShakaEstimatorConfig config_;
  HalfLifeEwma fast_;
  HalfLifeEwma slow_;
  std::size_t accepted_ = 0;
  std::size_t rejected_ = 0;
};

struct ExoMeterConfig {
  double initial_estimate_kbps = 1000.0;
  double percentile = 0.5;
  double max_weight = 2000.0;
};

class ExoBandwidthMeter {
 public:
  explicit ExoBandwidthMeter(ExoMeterConfig config = {});

  /// One completed transfer (chunk download): bytes over wall seconds.
  void on_transfer_end(std::int64_t bytes, double duration_s);

  [[nodiscard]] double estimate_kbps() const;

 private:
  ExoMeterConfig config_;
  SlidingPercentile percentile_;
};

class WindowThroughputEstimator {
 public:
  explicit WindowThroughputEstimator(std::size_t window = 4,
                                     double default_estimate_kbps = 0.0);

  void add_chunk_throughput(double kbps);

  /// Arithmetic mean of the window; the default when no samples yet.
  [[nodiscard]] double estimate_kbps() const;
  [[nodiscard]] bool has_samples() const { return window_.size() > 0; }

 private:
  SlidingWindow window_;
  double default_estimate_kbps_;
};

class AggregateThroughputEstimator {
 public:
  explicit AggregateThroughputEstimator(double fast_half_life_s = 2.0,
                                        double slow_half_life_s = 6.0);

  /// Feed every flow's progress sample; samples sharing the same interval
  /// end-time are summed into one link-level sample.
  void on_progress(const ProgressSample& sample);

  /// min(fast, slow); 0 until the first interval completes.
  [[nodiscard]] double estimate_kbps() const;
  [[nodiscard]] bool has_estimate() const;

 private:
  void flush();

  HalfLifeEwma fast_;
  HalfLifeEwma slow_;
  double interval_t0_ = -1.0;
  double interval_t1_ = -1.0;
  std::int64_t interval_bytes_ = 0;
};

}  // namespace demuxabr
