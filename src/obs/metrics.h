// Metrics registry (DESIGN.md §8 "Observability"): named Counter / Gauge /
// Histogram instruments with lock-free sharded hot paths, aggregated only
// at scrape time.
//
// Hot-path cost model: an *enabled* increment is one relaxed atomic RMW on
// a cache-line-padded slot selected by thread id — no locks, no false
// sharing between pool workers. A *disabled* DMX_COUNT/DMX_HIST site is a
// single relaxed atomic load and a predictable branch (the same contract as
// the trace macros; the CI perf-smoke floor guards it).
//
// Instruments are created on first use and never destroyed, so the static
// references the macros cache stay valid across MetricsRegistry::reset()
// (which zeroes values, never removes instruments).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace demuxabr::obs {

/// Global gate for the DMX_COUNT / DMX_GAUGE_SET / DMX_HIST macros.
bool metrics_enabled();
void set_metrics_enabled(bool on);

/// RAII enable/disable around a measured run (tests, bench --profile).
class ScopedMetrics {
 public:
  ScopedMetrics() { set_metrics_enabled(true); }
  ~ScopedMetrics() { set_metrics_enabled(false); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;
};

namespace detail {
/// Number of per-instrument shards; threads hash onto one. A power of two.
inline constexpr std::size_t kShards = 16;
/// Stable small index for the calling thread (assigned on first use).
std::size_t thread_shard();

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic event count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t n = 1) {
    shards_[detail::thread_shard()].value.fetch_add(n,
                                                    std::memory_order_relaxed);
  }
  /// Aggregate across shards. Racing adds may or may not be included.
  [[nodiscard]] std::uint64_t value() const;
  void reset();

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  detail::CounterShard shards_[detail::kShards];
};

/// Last-written value (e.g. a high-water mark published at scrape points).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Set-to-max: keeps the largest value ever published (races resolve to
  /// some observed value; exact under quiescence).
  void set_max(double v);
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Exponential-bucket histogram: bucket i spans (first * 2^(i-1),
/// first * 2^i]; the last bucket is the +inf overflow. Designed for
/// latency/duration distributions (download times, decision latencies)
/// where relative resolution matters across orders of magnitude.
class Histogram {
 public:
  Histogram(std::string name, double first_bucket, int bucket_count);

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    /// Inclusive upper bound per bucket; back() is +inf.
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< same size as bounds

    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Upper bound of the first bucket whose cumulative count reaches
    /// quantile `q` of the total (a conservative quantile estimate).
    [[nodiscard]] double quantile_bound(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int bucket_count() const { return bucket_count_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::vector<std::atomic<std::uint64_t>> buckets;
  };

  [[nodiscard]] int bucket_for(double v) const;

  std::string name_;
  double first_bucket_;
  int bucket_count_;
  std::vector<Shard> shards_;
};

/// Name -> instrument registry with a process-global instance. Lookup takes
/// a mutex; macro sites cache the returned reference in a function-local
/// static so the mutex is paid once per site.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First call fixes the bucket layout; later calls ignore the params.
  Histogram& histogram(const std::string& name, double first_bucket = 1e-7,
                       int bucket_count = 48);

  /// Text snapshot: one `name value` line per counter/gauge, histogram
  /// summary lines (count/mean/min/max/p50/p99). Sorted by name.
  [[nodiscard]] std::string to_text() const;
  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string to_json() const;
  /// Archival scrape: to_json() wrapped in a versioned envelope,
  /// {"schema":"demuxabr.metrics.v1","metrics":{...}}. Key order is stable
  /// (sorted by instrument name) so scrapes diff cleanly across runs;
  /// tests/test_obs_metrics.cpp pins the schema.
  [[nodiscard]] std::string scrape_json() const;

  /// Zero every instrument (references stay valid).
  void reset();

 private:
  template <typename T>
  struct Named {
    // std::deque-free stable addressing: instruments are heap-allocated.
    std::vector<std::unique_ptr<T>> items;
    T* find(const std::string& name) {
      for (auto& item : items) {
        if (item->name() == name) return item.get();
      }
      return nullptr;
    }
  };

  mutable std::mutex mutex_;
  Named<Counter> counters_;
  Named<Gauge> gauges_;
  Named<Histogram> histograms_;
};

}  // namespace demuxabr::obs

#define DMX_COUNT(name_, n_)                                                  \
  do {                                                                        \
    if (::demuxabr::obs::metrics_enabled()) {                                 \
      static ::demuxabr::obs::Counter& dmx_counter_ =                         \
          ::demuxabr::obs::MetricsRegistry::global().counter(name_);          \
      dmx_counter_.add(static_cast<std::uint64_t>(n_));                       \
    }                                                                         \
  } while (0)

#define DMX_GAUGE_SET(name_, v_)                                              \
  do {                                                                        \
    if (::demuxabr::obs::metrics_enabled()) {                                 \
      static ::demuxabr::obs::Gauge& dmx_gauge_ =                             \
          ::demuxabr::obs::MetricsRegistry::global().gauge(name_);            \
      dmx_gauge_.set(v_);                                                     \
    }                                                                         \
  } while (0)

#define DMX_GAUGE_MAX(name_, v_)                                              \
  do {                                                                        \
    if (::demuxabr::obs::metrics_enabled()) {                                 \
      static ::demuxabr::obs::Gauge& dmx_gauge_ =                             \
          ::demuxabr::obs::MetricsRegistry::global().gauge(name_);            \
      dmx_gauge_.set_max(v_);                                                 \
    }                                                                         \
  } while (0)

#define DMX_HIST(name_, v_)                                                   \
  do {                                                                        \
    if (::demuxabr::obs::metrics_enabled()) {                                 \
      static ::demuxabr::obs::Histogram& dmx_hist_ =                          \
          ::demuxabr::obs::MetricsRegistry::global().histogram(name_);        \
      dmx_hist_.observe(v_);                                                  \
    }                                                                         \
  } while (0)
