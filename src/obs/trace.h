// Structured event tracing (DESIGN.md §8 "Observability").
//
// The simulator's debugging story mirrors the paper's methodology: §3's
// failure modes (concurrent-download mis-estimation, A/V buffer imbalance)
// were all diagnosed from per-chunk download intervals and buffer
// trajectories captured *inside* instrumented players. The Tracer captures
// exactly that event taxonomy — download spans, ABR decisions with their
// inputs and outputs, buffer samples, stall spans, link flow-population
// changes, engine event pops — as typed records that render to NDJSON or
// Chrome `chrome://tracing` JSON with one track per session and per link.
//
// Zero-overhead-when-disabled contract: every instrumentation site goes
// through the DMX_TRACE_* macros below, which compile to a single relaxed
// atomic load and a predictable branch when no Tracer is installed (the CI
// perf-smoke steps/s floor guards this path). Argument rendering only runs
// on the enabled path.
//
// Threading: emitting is lock-free per thread (each thread appends to its
// own shard; shard registration takes the Tracer mutex once per thread).
// Install one Tracer for one logical run at a time — concurrent fleet
// *replications* would interleave colliding track ids — and drain only
// after the traced work has quiesced (joined its threads).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace demuxabr::obs {

/// Category bitmask: a Tracer only records the categories it was installed
/// with, so high-volume streams (buffer samples, engine pops) can be left
/// out of long captures.
enum Category : unsigned {
  kCatDownload = 1u << 0,  ///< chunk download spans (begin/end per flow)
  kCatAbr = 1u << 1,       ///< ABR decisions with inputs/outputs
  kCatBuffer = 1u << 2,    ///< buffer-level counter samples
  kCatStall = 1u << 3,     ///< playback state: startup, stall spans
  kCatLink = 1u << 4,      ///< link flow add/remove + population counters
  kCatEngine = 1u << 5,    ///< fleet-engine event pops
  kCatAll = (1u << 6) - 1u,
};

/// Track-id namespaces: one Chrome "process" per session and per link.
/// Sessions use their fleet client id (solo sessions default to 0); links
/// and the engine sit in disjoint ranges so ids never collide.
inline constexpr std::uint32_t kLinkTrackBase = 1'000'000;
inline constexpr std::uint32_t kEngineTrack = 2'000'000;

/// Lanes within a track (Chrome "threads"): concurrent audio and video
/// downloads in one session must not share a lane or their spans would not
/// nest.
inline constexpr std::uint8_t kLanePlayback = 0;
inline constexpr std::uint8_t kLaneVideo = 1;
inline constexpr std::uint8_t kLaneAudio = 2;
inline constexpr std::uint8_t kLaneAbr = 3;

const char* lane_name(std::uint8_t lane);
const char* category_name(Category category);

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kBegin,    ///< span open (must be closed LIFO per (track, lane, name))
    kEnd,      ///< span close
    kInstant,  ///< point event
    kCounter,  ///< sampled value series (args carry the values)
  };

  Kind kind = Kind::kInstant;
  std::uint8_t lane = kLanePlayback;
  Category category = kCatEngine;
  const char* name = "";  ///< static-lifetime literal
  std::uint32_t track = 0;
  double t_s = 0.0;  ///< simulated seconds (absolute fleet clock)
  /// Pre-rendered JSON object fields without the enclosing braces, e.g.
  /// `"chunk":3,"kbps":1200`. Built via TraceArgs on the enabled path only.
  std::string args;
};

/// Incremental builder for TraceEvent::args. Chainable on a temporary:
///   TraceArgs().kv("chunk", 3).kv("track", id)
class TraceArgs {
 public:
  TraceArgs&& kv(const char* key, double value) &&;
  TraceArgs&& kv(const char* key, std::int64_t value) &&;
  TraceArgs&& kv(const char* key, int value) && {
    return std::move(*this).kv(key, static_cast<std::int64_t>(value));
  }
  TraceArgs&& kv(const char* key, std::string_view value) &&;
  operator std::string() && { return std::move(out_); }

 private:
  void key(const char* k);
  std::string out_;
};

/// Where drained events go. Calls arrive serialized (Tracer::drain_to holds
/// the tracer lock): track names first, then events in per-shard emission
/// order, then finish().
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void track_name(std::uint32_t track, const std::string& name) {
    (void)track;
    (void)name;
  }
  virtual void event(const TraceEvent& event) = 0;
  virtual void finish() {}
};

/// One JSON object per line per event; `{"meta":"track_name",...}` lines
/// first. Greppable and streamable into any log pipeline.
class NdjsonSink : public TraceSink {
 public:
  explicit NdjsonSink(std::ostream& out) : out_(out) {}
  void track_name(std::uint32_t track, const std::string& name) override;
  void event(const TraceEvent& event) override;

 private:
  std::ostream& out_;
};

/// Chrome trace-event JSON (open in chrome://tracing or Perfetto). Buffers
/// everything and sorts by timestamp at finish() so each track's spans nest
/// and every track's timestamps are monotonic. One Chrome process per
/// track (named via process_name metadata), one thread per lane.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& out) : out_(out) {}
  void track_name(std::uint32_t track, const std::string& name) override;
  void event(const TraceEvent& event) override;
  void finish() override;

 private:
  std::ostream& out_;
  std::map<std::uint32_t, std::string> names_;
  std::vector<TraceEvent> events_;
};

/// In-memory sink for tests.
class CaptureSink : public TraceSink {
 public:
  void track_name(std::uint32_t track, const std::string& name) override {
    names[track] = name;
  }
  void event(const TraceEvent& e) override { events.push_back(e); }

  std::map<std::uint32_t, std::string> names;
  std::vector<TraceEvent> events;
};

class Tracer {
 public:
  explicit Tracer(unsigned categories = kCatAll);

  /// Record one event (emitting thread appends to its own shard).
  void emit(TraceEvent event);

  /// Attach a human-readable name to a track (session/link). Idempotent.
  void name_track(std::uint32_t track, std::string name);

  [[nodiscard]] unsigned categories() const { return categories_; }

  /// Feed every recorded event (and track names) to `sink`, then
  /// sink.finish(). Non-destructive; call after the traced work quiesced.
  void drain_to(TraceSink& sink) const;

  [[nodiscard]] std::size_t event_count() const;

 private:
  struct Shard {
    std::vector<TraceEvent> events;
  };

  Shard& local_shard();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::uint32_t, std::string> track_names_;
  unsigned categories_;
  std::uint64_t serial_;  ///< process-unique, keys the thread-local cache
};

/// Globally installed tracer, or nullptr. install_tracer(nullptr)
/// uninstalls. Not reference-counted: the caller keeps the Tracer alive
/// while installed.
Tracer* tracer();
void install_tracer(Tracer* tracer);

namespace detail {
/// Published category mask of the installed tracer (0 when none) — the
/// macro gate's disabled path is one inline relaxed load.
extern std::atomic<unsigned> g_trace_categories;
}  // namespace detail

/// The macro gate: non-null iff a tracer is installed *and* records `cat`.
/// One relaxed atomic load on the disabled path.
inline Tracer* tracer_if(Category cat) {
  if ((detail::g_trace_categories.load(std::memory_order_relaxed) & cat) == 0) {
    return nullptr;
  }
  return tracer();
}

/// RAII install/uninstall around a traced run.
class ScopedTracer {
 public:
  explicit ScopedTracer(unsigned categories = kCatAll) : tracer_(categories) {
    install_tracer(&tracer_);
  }
  ~ScopedTracer() { install_tracer(nullptr); }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

  [[nodiscard]] Tracer& get() { return tracer_; }

 private:
  Tracer tracer_;
};

/// Minimal JSON string escaping for names/args values.
std::string json_escape(std::string_view text);

}  // namespace demuxabr::obs

// --- Instrumentation macros ---------------------------------------------
//
// `args` is a TraceArgs chain (or any std::string expression); it is only
// evaluated when the tracer is installed and the category enabled.

#define DMX_TRACE_EVENT_(cat, kind_, track_, lane_, name_, t_, args_)          \
  do {                                                                         \
    if (::demuxabr::obs::Tracer* dmx_tracer_ =                                 \
            ::demuxabr::obs::tracer_if(cat)) {                                 \
      dmx_tracer_->emit(::demuxabr::obs::TraceEvent{                           \
          ::demuxabr::obs::TraceEvent::Kind::kind_,                            \
          static_cast<std::uint8_t>(lane_), (cat), (name_),                    \
          static_cast<std::uint32_t>(track_), (t_), (args_)});                 \
    }                                                                          \
  } while (0)

#define DMX_TRACE_SPAN_BEGIN(cat, track, lane, name, t, args) \
  DMX_TRACE_EVENT_(cat, kBegin, track, lane, name, t, args)
#define DMX_TRACE_SPAN_END(cat, track, lane, name, t, args) \
  DMX_TRACE_EVENT_(cat, kEnd, track, lane, name, t, args)
#define DMX_TRACE_INSTANT(cat, track, lane, name, t, args) \
  DMX_TRACE_EVENT_(cat, kInstant, track, lane, name, t, args)
#define DMX_TRACE_COUNTER(cat, track, name, t, args) \
  DMX_TRACE_EVENT_(cat, kCounter, track, 0, name, t, args)
