#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "util/strings.h"

namespace demuxabr::obs {

namespace {

/// Deterministic runaway guard: a pathological timestamp (or a tiny bin_s)
/// clamps into the last representable bin instead of exhausting memory.
constexpr std::int64_t kMaxBins = std::int64_t{1} << 22;

std::int64_t us_of(double seconds) { return std::llround(seconds * 1e6); }

/// Sentinel-aware mean helpers for the exporters.
double mean_s(std::int64_t sum_us, std::uint64_t samples) {
  return samples > 0
             ? static_cast<double>(sum_us) / 1e6 / static_cast<double>(samples)
             : 0.0;
}

}  // namespace

// --- TimelineShard -------------------------------------------------------

TimelineShard::TimelineShard(const TelemetryConfig& config,
                             std::vector<double> ladder_kbps,
                             std::vector<std::string> link_names)
    : config_(config),
      ladder_(std::move(ladder_kbps)),
      link_names_(std::move(link_names)),
      link_bins_(link_names_.size()),
      cdn_bins_(link_names_.size()) {
  if (config_.bin_s <= 0.0) config_.bin_s = 1.0;
  std::sort(ladder_.begin(), ladder_.end());
  ladder_.erase(std::unique(ladder_.begin(), ladder_.end()), ladder_.end());
}

std::int64_t TimelineShard::bin_of(double t) const {
  if (!(t > 0.0)) return 0;
  const double bin = t / config_.bin_s;
  if (bin >= static_cast<double>(kMaxBins - 1)) return kMaxBins - 1;
  return static_cast<std::int64_t>(bin);  // floor: bins are [b·w, (b+1)·w)
}

FleetBin& TimelineShard::fleet_bin(std::int64_t bin) {
  const auto index = static_cast<std::size_t>(bin);
  if (bins_.size() <= index) bins_.resize(index + 1);
  return bins_[index];
}

void TimelineShard::sample_session(TimelineCursor& cursor, double t,
                                   double audio_level_s, double video_level_s,
                                   bool stalled) {
  const std::int64_t b = bin_of(t);
  FleetBin& bin = fleet_bin(b);
  const std::int64_t audio_us = us_of(audio_level_s);
  const std::int64_t video_us = us_of(video_level_s);
  ++bin.samples;
  bin.audio_level_sum_us += audio_us;
  bin.video_level_sum_us += video_us;
  bin.imbalance_sum_us += std::llabs(audio_us - video_us);
  bin.audio_level_min_us = std::min(bin.audio_level_min_us, audio_us);
  bin.video_level_min_us = std::min(bin.video_level_min_us, video_us);
  if (cursor.active_bin != b) {
    cursor.active_bin = b;
    ++bin.active_sessions;
  }
  if (stalled && cursor.stalled_bin != b) {
    cursor.stalled_bin = b;
    ++bin.stalled_sessions;
  }
}

void TimelineShard::video_chunk(double t, double kbps) {
  const std::size_t rungs = ladder_.size();
  if (rungs == 0) return;
  const auto b = static_cast<std::size_t>(bin_of(t));
  if (mix_.size() < (b + 1) * rungs) mix_.resize((b + 1) * rungs, 0);
  // Declared chunk rates are ladder entries; lower_bound with a hair of
  // slack maps them back to their rung (and clamps anything above the top).
  auto it = std::lower_bound(ladder_.begin(), ladder_.end(), kbps - 1e-6);
  const std::size_t rung =
      it == ladder_.end() ? rungs - 1
                          : static_cast<std::size_t>(it - ladder_.begin());
  ++mix_[b * rungs + rung];
}

void TimelineShard::session_started(double t) {
  ++fleet_bin(bin_of(t)).started_sessions;
}

void TimelineShard::session_departed(double t) {
  ++fleet_bin(bin_of(t)).departed_sessions;
}

void TimelineShard::link_segment(std::size_t link, double t0, double t1,
                                 int flows, double offered_kbps,
                                 double delivered_kbps) {
  if (link >= link_bins_.size() || !(t1 > t0)) return;
  std::vector<LinkBin>& series = link_bins_[link];
  std::int64_t b = bin_of(t0);
  double at = t0;
  while (at < t1 && b < kMaxBins) {
    const double boundary = static_cast<double>(b + 1) * config_.bin_s;
    const double piece_end = std::min(boundary, t1);
    const double dt = piece_end - at;
    if (dt > 0.0) {
      if (series.size() <= static_cast<std::size_t>(b)) {
        series.resize(static_cast<std::size_t>(b) + 1);
      }
      LinkBin& bin = series[static_cast<std::size_t>(b)];
      bin.flow_us += std::llround(static_cast<double>(flows) * dt * 1e6);
      bin.offered_kbit_mil += std::llround(offered_kbps * dt * 1000.0);
      if (flows > 0) {
        bin.busy_us += std::llround(dt * 1e6);
        bin.delivered_kbit_mil += std::llround(delivered_kbps * dt * 1000.0);
      }
    }
    at = piece_end;
    ++b;
  }
}

void TimelineShard::cdn_request(std::size_t link, double t, bool edge_hit) {
  if (link >= cdn_bins_.size()) return;
  std::vector<CdnBin>& series = cdn_bins_[link];
  const auto b = static_cast<std::size_t>(bin_of(t));
  if (series.size() <= b) series.resize(b + 1);
  if (edge_hit) {
    ++series[b].hits;
  } else {
    ++series[b].misses;
  }
}

FleetTimeline TimelineShard::take() {
  FleetTimeline out;
  out.bin_s = config_.bin_s;
  out.ladder_kbps = std::move(ladder_);
  out.bins = std::move(bins_);
  out.bitrate_mix = std::move(mix_);
  out.links.reserve(link_bins_.size());
  for (std::size_t l = 0; l < link_bins_.size(); ++l) {
    out.links.push_back({link_names_[l], std::move(link_bins_[l])});
  }
  for (std::size_t l = 0; l < cdn_bins_.size(); ++l) {
    if (!cdn_bins_[l].empty()) out.cdns.push_back({l, std::move(cdn_bins_[l])});
  }
  out.normalize();
  return out;
}

// --- FleetTimeline -------------------------------------------------------

void FleetTimeline::normalize() {
  std::size_t n = bins.size();
  const std::size_t rungs = ladder_kbps.size();
  if (rungs > 0) n = std::max(n, (bitrate_mix.size() + rungs - 1) / rungs);
  for (const LinkSeries& link : links) n = std::max(n, link.bins.size());
  for (const CdnSeries& cdn : cdns) n = std::max(n, cdn.bins.size());
  bins.resize(n);
  bitrate_mix.resize(n * rungs, 0);
  for (LinkSeries& link : links) link.bins.resize(n);
  for (CdnSeries& cdn : cdns) cdn.bins.resize(n);
  std::sort(cdns.begin(), cdns.end(),
            [](const CdnSeries& a, const CdnSeries& b) { return a.link < b.link; });
}

void FleetTimeline::merge(const FleetTimeline& other,
                          const std::vector<std::size_t>* link_map) {
  if (ladder_kbps.empty()) ladder_kbps = other.ladder_kbps;
  if (bins.size() < other.bins.size()) bins.resize(other.bins.size());
  for (std::size_t i = 0; i < other.bins.size(); ++i) {
    const FleetBin& src = other.bins[i];
    FleetBin& dst = bins[i];
    dst.samples += src.samples;
    dst.active_sessions += src.active_sessions;
    dst.stalled_sessions += src.stalled_sessions;
    dst.started_sessions += src.started_sessions;
    dst.departed_sessions += src.departed_sessions;
    dst.audio_level_sum_us += src.audio_level_sum_us;
    dst.video_level_sum_us += src.video_level_sum_us;
    dst.imbalance_sum_us += src.imbalance_sum_us;
    dst.audio_level_min_us = std::min(dst.audio_level_min_us, src.audio_level_min_us);
    dst.video_level_min_us = std::min(dst.video_level_min_us, src.video_level_min_us);
  }
  if (bitrate_mix.size() < other.bitrate_mix.size()) {
    bitrate_mix.resize(other.bitrate_mix.size(), 0);
  }
  for (std::size_t i = 0; i < other.bitrate_mix.size(); ++i) {
    bitrate_mix[i] += other.bitrate_mix[i];
  }
  for (std::size_t j = 0; j < other.links.size(); ++j) {
    const std::size_t global = link_map != nullptr ? (*link_map)[j] : j;
    if (global >= links.size()) links.resize(global + 1);
    LinkSeries& dst = links[global];
    if (dst.name.empty()) dst.name = other.links[j].name;
    const std::vector<LinkBin>& src = other.links[j].bins;
    if (dst.bins.size() < src.size()) dst.bins.resize(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst.bins[i].busy_us += src[i].busy_us;
      dst.bins[i].flow_us += src[i].flow_us;
      dst.bins[i].offered_kbit_mil += src[i].offered_kbit_mil;
      dst.bins[i].delivered_kbit_mil += src[i].delivered_kbit_mil;
    }
  }
  for (const CdnSeries& cdn : other.cdns) {
    CdnSeries copy = cdn;
    if (link_map != nullptr) copy.link = (*link_map)[cdn.link];
    cdns.push_back(std::move(copy));
  }
}

std::string FleetTimeline::fingerprint() const {
  std::string out = format("telemetry bin_s_mil:%lld bins:%zu rungs:%zu links:%zu cdns:%zu ladder:",
                           static_cast<long long>(std::llround(bin_s * 1000.0)),
                           bins.size(), ladder_kbps.size(), links.size(),
                           cdns.size());
  for (std::size_t r = 0; r < ladder_kbps.size(); ++r) {
    out += format("%s%lld", r > 0 ? "," : "",
                  static_cast<long long>(std::llround(ladder_kbps[r] * 1000.0)));
  }
  out += "\n";
  const std::size_t rungs = ladder_kbps.size();
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const FleetBin& b = bins[i];
    out += format(
        "tbin %zu s:%llu act:%llu stl:%llu new:%llu dep:%llu asum:%lld "
        "vsum:%lld imb:%lld amin:%lld vmin:%lld",
        i, static_cast<unsigned long long>(b.samples),
        static_cast<unsigned long long>(b.active_sessions),
        static_cast<unsigned long long>(b.stalled_sessions),
        static_cast<unsigned long long>(b.started_sessions),
        static_cast<unsigned long long>(b.departed_sessions),
        static_cast<long long>(b.audio_level_sum_us),
        static_cast<long long>(b.video_level_sum_us),
        static_cast<long long>(b.imbalance_sum_us),
        static_cast<long long>(b.audio_level_min_us == kTelemetryNoSample
                                   ? -1
                                   : b.audio_level_min_us),
        static_cast<long long>(b.video_level_min_us == kTelemetryNoSample
                                   ? -1
                                   : b.video_level_min_us));
    if (rungs > 0) {
      out += " mix:";
      for (std::size_t r = 0; r < rungs; ++r) {
        out += format("%s%llu", r > 0 ? "," : "",
                      static_cast<unsigned long long>(bitrate_mix[i * rungs + r]));
      }
    }
    out += "\n";
  }
  for (std::size_t l = 0; l < links.size(); ++l) {
    for (std::size_t i = 0; i < links[l].bins.size(); ++i) {
      const LinkBin& b = links[l].bins[i];
      out += format("tlink %zu %s %zu busy:%lld flow:%lld off:%lld del:%lld\n",
                    l, links[l].name.c_str(), i,
                    static_cast<long long>(b.busy_us),
                    static_cast<long long>(b.flow_us),
                    static_cast<long long>(b.offered_kbit_mil),
                    static_cast<long long>(b.delivered_kbit_mil));
    }
  }
  for (const CdnSeries& cdn : cdns) {
    for (std::size_t i = 0; i < cdn.bins.size(); ++i) {
      out += format("tcdn %zu %zu hit:%llu miss:%llu\n", cdn.link, i,
                    static_cast<unsigned long long>(cdn.bins[i].hits),
                    static_cast<unsigned long long>(cdn.bins[i].misses));
    }
  }
  return out;
}

std::string FleetTimeline::to_ndjson() const {
  std::string out;
  const std::size_t rungs = ladder_kbps.size();
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const FleetBin& b = bins[i];
    out += format(
        "{\"type\":\"fleet\",\"bin\":%zu,\"t_s\":%.3f,\"samples\":%llu,"
        "\"active\":%llu,\"stalled\":%llu,\"started\":%llu,\"departed\":%llu,"
        "\"audio_mean_s\":%.4f,\"video_mean_s\":%.4f,\"imbalance_mean_s\":%.4f",
        i, static_cast<double>(i) * bin_s,
        static_cast<unsigned long long>(b.samples),
        static_cast<unsigned long long>(b.active_sessions),
        static_cast<unsigned long long>(b.stalled_sessions),
        static_cast<unsigned long long>(b.started_sessions),
        static_cast<unsigned long long>(b.departed_sessions),
        mean_s(b.audio_level_sum_us, b.samples),
        mean_s(b.video_level_sum_us, b.samples),
        mean_s(b.imbalance_sum_us, b.samples));
    if (b.audio_level_min_us != kTelemetryNoSample) {
      out += format(",\"audio_min_s\":%.4f,\"video_min_s\":%.4f",
                    static_cast<double>(b.audio_level_min_us) / 1e6,
                    static_cast<double>(b.video_level_min_us) / 1e6);
    } else {
      out += ",\"audio_min_s\":null,\"video_min_s\":null";
    }
    if (rungs > 0) {
      out += ",\"mix\":[";
      for (std::size_t r = 0; r < rungs; ++r) {
        out += format("%s%llu", r > 0 ? "," : "",
                      static_cast<unsigned long long>(bitrate_mix[i * rungs + r]));
      }
      out += "]";
    }
    out += "}\n";
  }
  for (std::size_t l = 0; l < links.size(); ++l) {
    for (std::size_t i = 0; i < links[l].bins.size(); ++i) {
      const LinkBin& b = links[l].bins[i];
      out += format(
          "{\"type\":\"link\",\"link\":%zu,\"name\":\"%s\",\"bin\":%zu,"
          "\"busy\":%.4f,\"mean_flows\":%.3f,\"offered_kbps\":%.1f,"
          "\"delivered_kbps\":%.1f}\n",
          l, links[l].name.c_str(), i,
          static_cast<double>(b.busy_us) / 1e6 / bin_s,
          static_cast<double>(b.flow_us) / 1e6 / bin_s,
          static_cast<double>(b.offered_kbit_mil) / 1000.0 / bin_s,
          static_cast<double>(b.delivered_kbit_mil) / 1000.0 / bin_s);
    }
  }
  for (const CdnSeries& cdn : cdns) {
    for (std::size_t i = 0; i < cdn.bins.size(); ++i) {
      const std::uint64_t total = cdn.bins[i].hits + cdn.bins[i].misses;
      out += format(
          "{\"type\":\"cdn\",\"link\":%zu,\"bin\":%zu,\"hits\":%llu,"
          "\"misses\":%llu,\"hit_ratio\":%.4f}\n",
          cdn.link, i, static_cast<unsigned long long>(cdn.bins[i].hits),
          static_cast<unsigned long long>(cdn.bins[i].misses),
          total > 0 ? static_cast<double>(cdn.bins[i].hits) /
                          static_cast<double>(total)
                    : 0.0);
    }
  }
  return out;
}

std::string FleetTimeline::to_csv() const {
  std::string out =
      "bin,t_s,samples,active,stalled,started,departed,audio_mean_s,"
      "video_mean_s,imbalance_mean_s,audio_min_s,video_min_s\n";
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const FleetBin& b = bins[i];
    out += format("%zu,%.3f,%llu,%llu,%llu,%llu,%llu,%.4f,%.4f,%.4f", i,
                  static_cast<double>(i) * bin_s,
                  static_cast<unsigned long long>(b.samples),
                  static_cast<unsigned long long>(b.active_sessions),
                  static_cast<unsigned long long>(b.stalled_sessions),
                  static_cast<unsigned long long>(b.started_sessions),
                  static_cast<unsigned long long>(b.departed_sessions),
                  mean_s(b.audio_level_sum_us, b.samples),
                  mean_s(b.video_level_sum_us, b.samples),
                  mean_s(b.imbalance_sum_us, b.samples));
    if (b.audio_level_min_us != kTelemetryNoSample) {
      out += format(",%.4f,%.4f",
                    static_cast<double>(b.audio_level_min_us) / 1e6,
                    static_cast<double>(b.video_level_min_us) / 1e6);
    } else {
      out += ",,";
    }
    out += "\n";
  }
  return out;
}

}  // namespace demuxabr::obs
