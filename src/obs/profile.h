// Engine self-profiling (DESIGN.md §8): per-phase wall-clock accounting for
// the event-heap fleet engine, so a steps/s regression localizes to a phase
// (drain / register / admit) instead of "the engine got slower".
//
// Wall-clock reads only happen when profiling was requested
// (FleetConfig::profile); the heap's structural counters (pops, lazy-sync
// hit rate) are plain integer increments and are always collected.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace demuxabr::obs {

struct PhaseStats {
  double wall_s = 0.0;
  std::uint64_t calls = 0;
};

/// Per-phase accounting of one fleet-engine run. Phases follow the
/// event-heap engine's loop (fleet/scheduler.cpp run_event_heap):
///  * drain    — pop and process every event due at the current timestamp;
///  * register — the registration phase (begin_step + re-key) at that time;
///  * admit    — admission scans for clients arriving at or before it.
struct EngineProfile {
  /// Wall-clock phase timings were collected (FleetConfig::profile).
  bool enabled = false;

  PhaseStats drain;
  PhaseStats register_phase;
  PhaseStats admit;

  /// Heap structure counters (always collected, engine=event_heap only).
  std::uint64_t heap_pops = 0;
  /// sync_link calls vs. the subset that actually re-keyed: the epoch-lazy
  /// optimisation's effectiveness. A check that hits the epoch cache is
  /// O(1); a refresh costs an O(log F) registry lookup + O(log N) re-key.
  std::uint64_t link_sync_checks = 0;
  std::uint64_t link_sync_refreshes = 0;

  /// Fraction of sync checks answered by the epoch cache without a re-key.
  [[nodiscard]] double epoch_lazy_hit_rate() const {
    return link_sync_checks > 0
               ? 1.0 - static_cast<double>(link_sync_refreshes) /
                           static_cast<double>(link_sync_checks)
               : 0.0;
  }
  [[nodiscard]] double total_wall_s() const {
    return drain.wall_s + register_phase.wall_s + admit.wall_s;
  }

  /// JSON object (schema documented in EXPERIMENTS.md "Engine profile").
  [[nodiscard]] std::string to_json() const;
  /// Human-readable table (bench_fleet --profile).
  [[nodiscard]] std::string to_table() const;
};

/// RAII phase timer: accumulates into `stats` when non-null, otherwise free
/// (no clock reads on the unprofiled path).
class PhaseTimer {
 public:
  explicit PhaseTimer(PhaseStats* stats) : stats_(stats) {
    if (stats_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    if (stats_ != nullptr) {
      stats_->wall_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
              .count();
      ++stats_->calls;
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseStats* stats_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace demuxabr::obs
