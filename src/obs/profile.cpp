#include "obs/profile.h"

#include "util/strings.h"

namespace demuxabr::obs {
namespace {

std::string phase_json(const char* name, const PhaseStats& stats) {
  return format("\"%s\":{\"wall_s\":%.6f,\"calls\":%llu}", name, stats.wall_s,
                static_cast<unsigned long long>(stats.calls));
}

}  // namespace

std::string EngineProfile::to_json() const {
  std::string out = "{";
  out += format("\"enabled\":%s,", enabled ? "true" : "false");
  out += phase_json("drain", drain) + ",";
  out += phase_json("register", register_phase) + ",";
  out += phase_json("admit", admit) + ",";
  out += format(
      "\"heap_pops\":%llu,\"link_sync_checks\":%llu,"
      "\"link_sync_refreshes\":%llu,\"epoch_lazy_hit_rate\":%.4f",
      static_cast<unsigned long long>(heap_pops),
      static_cast<unsigned long long>(link_sync_checks),
      static_cast<unsigned long long>(link_sync_refreshes),
      epoch_lazy_hit_rate());
  return out + "}";
}

std::string EngineProfile::to_table() const {
  std::string out;
  out += "  phase       wall_s      calls      us/call\n";
  const auto row = [&](const char* name, const PhaseStats& stats) {
    out += format("  %-9s %9.3f %10llu %12.3f\n", name, stats.wall_s,
                  static_cast<unsigned long long>(stats.calls),
                  stats.calls > 0
                      ? stats.wall_s * 1e6 / static_cast<double>(stats.calls)
                      : 0.0);
  };
  row("drain", drain);
  row("register", register_phase);
  row("admit", admit);
  out += format("  total     %9.3f\n", total_wall_s());
  out += format(
      "  heap_pops=%llu link_sync_checks=%llu refreshes=%llu "
      "epoch_lazy_hit_rate=%.1f%%\n",
      static_cast<unsigned long long>(heap_pops),
      static_cast<unsigned long long>(link_sync_checks),
      static_cast<unsigned long long>(link_sync_refreshes),
      epoch_lazy_hit_rate() * 100.0);
  return out;
}

}  // namespace demuxabr::obs
