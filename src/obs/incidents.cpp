#include "obs/incidents.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/strings.h"

namespace demuxabr::obs {

namespace {

/// One hysteresis scan over a value series: open at `enter` sustained for
/// `min_bins`, close below `exit` (or at the end of the series).
void scan_series(const std::vector<double>& series, double enter, double exit,
                 std::size_t min_bins, double bin_s, IncidentType type,
                 const std::string& entity, std::size_t link,
                 std::vector<Incident>& out) {
  if (min_bins == 0) min_bins = 1;
  bool open = false;
  std::size_t run = 0;
  Incident current;
  const auto finalize = [&](std::size_t end_bin) {
    current.end_bin = static_cast<std::int64_t>(end_bin);
    current.end_s = static_cast<double>(end_bin + 1) * bin_s;
    out.push_back(current);
    open = false;
    run = 0;
  };
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double value = series[i];
    if (!open) {
      if (value >= enter) {
        ++run;
        if (run >= min_bins) {
          const std::size_t start = i + 1 - run;
          current = Incident{};
          current.type = type;
          current.entity = entity;
          current.link = link;
          current.start_bin = static_cast<std::int64_t>(start);
          current.start_s = static_cast<double>(start) * bin_s;
          current.peak = series[start];
          current.peak_bin = static_cast<std::int64_t>(start);
          for (std::size_t j = start; j <= i; ++j) {
            if (series[j] > current.peak) {
              current.peak = series[j];
              current.peak_bin = static_cast<std::int64_t>(j);
            }
          }
          open = true;
        }
      } else {
        run = 0;
      }
      continue;
    }
    if (value < exit) {
      finalize(i - 1);
    } else if (value > current.peak) {
      current.peak = value;
      current.peak_bin = static_cast<std::int64_t>(i);
    }
  }
  if (open) finalize(series.size() - 1);
}

std::vector<double> stall_fraction_series(const FleetTimeline& t) {
  std::vector<double> series(t.bins.size(), 0.0);
  for (std::size_t i = 0; i < t.bins.size(); ++i) {
    if (t.bins[i].active_sessions > 0) {
      series[i] = static_cast<double>(t.bins[i].stalled_sessions) /
                  static_cast<double>(t.bins[i].active_sessions);
    }
  }
  return series;
}

std::vector<double> imbalance_series(const FleetTimeline& t) {
  std::vector<double> series(t.bins.size(), 0.0);
  for (std::size_t i = 0; i < t.bins.size(); ++i) {
    if (t.bins[i].samples > 0) {
      series[i] = static_cast<double>(t.bins[i].imbalance_sum_us) / 1e6 /
                  static_cast<double>(t.bins[i].samples);
    }
  }
  return series;
}

std::vector<double> busy_fraction_series(const FleetTimeline& t,
                                         const LinkSeries& link) {
  std::vector<double> series(link.bins.size(), 0.0);
  for (std::size_t i = 0; i < link.bins.size(); ++i) {
    series[i] = static_cast<double>(link.bins[i].busy_us) / 1e6 / t.bin_s;
  }
  return series;
}

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Palette for multi-series charts; cycles.
const char* series_color(std::size_t index) {
  static const char* kColors[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                                  "#9467bd", "#8c564b", "#17becf", "#7f7f7f"};
  return kColors[index % (sizeof(kColors) / sizeof(kColors[0]))];
}

constexpr int kChartW = 860;
constexpr int kChartH = 150;
constexpr int kChartPad = 4;

struct ChartSeries {
  std::string label;
  std::vector<double> values;
};

/// One inline-SVG line chart: shared y-scale over all series, a legend
/// above, the y-max printed in the corner.
std::string svg_chart(const std::string& title,
                      const std::vector<ChartSeries>& series, double y_floor) {
  double y_max = y_floor;
  std::size_t n = 0;
  for (const ChartSeries& s : series) {
    n = std::max(n, s.values.size());
    for (const double v : s.values) y_max = std::max(y_max, v);
  }
  if (y_max <= 0.0) y_max = 1.0;
  std::string out = "<div class=\"chart\"><h3>" + html_escape(title) + "</h3><p class=\"legend\">";
  for (std::size_t s = 0; s < series.size(); ++s) {
    out += format("<span style=\"color:%s\">&#9632; %s</span> ",
                  series_color(s), html_escape(series[s].label).c_str());
  }
  out += format("<span class=\"ymax\">y-max %.2f</span></p>", y_max);
  out += format(
      "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" "
      "role=\"img\">\n<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" "
      "fill=\"#fafafa\" stroke=\"#ddd\"/>\n",
      kChartW, kChartH, kChartW, kChartH, kChartW, kChartH);
  const double plot_w = kChartW - 2.0 * kChartPad;
  const double plot_h = kChartH - 2.0 * kChartPad;
  for (std::size_t s = 0; s < series.size(); ++s) {
    const std::vector<double>& values = series[s].values;
    if (values.empty()) continue;
    out += format("<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"",
                  series_color(s));
    const double dx = values.size() > 1 ? plot_w / static_cast<double>(values.size() - 1) : 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double x = kChartPad + dx * static_cast<double>(i);
      const double y = kChartPad + plot_h * (1.0 - std::min(values[i], y_max) / y_max);
      out += format("%s%.1f,%.1f", i > 0 ? " " : "", x, y);
    }
    out += "\"/>\n";
  }
  out += "</svg></div>\n";
  (void)n;
  return out;
}

}  // namespace

const char* incident_type_name(IncidentType type) {
  switch (type) {
    case IncidentType::kStallStorm: return "stall_storm";
    case IncidentType::kAvImbalance: return "av_imbalance";
    case IncidentType::kLinkSaturation: return "link_saturation";
  }
  return "unknown";
}

std::vector<Incident> detect_incidents(const FleetTimeline& timeline,
                                       const IncidentConfig& config) {
  std::vector<Incident> incidents;
  scan_series(stall_fraction_series(timeline), config.stall_enter_fraction,
              config.stall_exit_fraction, config.stall_min_bins,
              timeline.bin_s, IncidentType::kStallStorm, "fleet", 0, incidents);
  scan_series(imbalance_series(timeline), config.imbalance_enter_s,
              config.imbalance_exit_s, config.imbalance_min_bins,
              timeline.bin_s, IncidentType::kAvImbalance, "fleet", 0,
              incidents);
  for (std::size_t l = 0; l < timeline.links.size(); ++l) {
    scan_series(busy_fraction_series(timeline, timeline.links[l]),
                config.link_busy_enter, config.link_busy_exit,
                config.link_min_bins, timeline.bin_s,
                IncidentType::kLinkSaturation, timeline.links[l].name, l,
                incidents);
  }
  for (const Incident& incident : incidents) {
    DMX_TRACE_INSTANT(
        kCatEngine, kEngineTrack, kLanePlayback, "incident_begin",
        incident.start_s,
        TraceArgs()
            .kv("type", std::string_view(incident_type_name(incident.type)))
            .kv("entity", std::string_view(incident.entity))
            .kv("peak", incident.peak));
    DMX_TRACE_INSTANT(
        kCatEngine, kEngineTrack, kLanePlayback, "incident_end",
        incident.end_s,
        TraceArgs()
            .kv("type", std::string_view(incident_type_name(incident.type)))
            .kv("entity", std::string_view(incident.entity))
            .kv("peak", incident.peak));
  }
  return incidents;
}

std::string telemetry_report(const FleetTimeline& timeline,
                             const std::vector<Incident>& incidents,
                             const std::string& title) {
  std::string out =
      "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  out += "<title>" + html_escape(title) + "</title>\n";
  out +=
      "<style>\n"
      "body{font-family:system-ui,sans-serif;margin:24px;color:#222}\n"
      "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.6em}\n"
      "h3{font-size:0.95em;margin:0.4em 0 0.1em}\n"
      ".legend{font-size:0.8em;margin:0.1em 0 0.3em}\n"
      ".ymax{color:#888;float:right}\n"
      "table{border-collapse:collapse;font-size:0.85em}\n"
      "td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}\n"
      "th{background:#f0f0f0}td.ent,th.ent{text-align:left}\n"
      "</style>\n</head>\n<body>\n";
  out += "<h1>" + html_escape(title) + "</h1>\n";
  out += format(
      "<p>%zu bins &times; %.3g s, %zu links, %zu CDN nodes, %zu incidents "
      "detected.</p>\n",
      timeline.bins.size(), timeline.bin_s, timeline.links.size(),
      timeline.cdns.size(), incidents.size());

  // Sessions chart.
  ChartSeries active{"active sessions", {}};
  ChartSeries stalled{"stalled sessions", {}};
  ChartSeries started{"started", {}};
  for (const FleetBin& b : timeline.bins) {
    active.values.push_back(static_cast<double>(b.active_sessions));
    stalled.values.push_back(static_cast<double>(b.stalled_sessions));
    started.values.push_back(static_cast<double>(b.started_sessions));
  }
  out += "<h2>Sessions</h2>\n";
  out += svg_chart("Active / stalled / started per bin",
                   {active, stalled, started}, 1.0);

  // Buffer chart.
  ChartSeries audio{"mean audio buffer (s)", {}};
  ChartSeries video{"mean video buffer (s)", {}};
  ChartSeries imbalance{"mean |A-V| (s)", {}};
  for (const FleetBin& b : timeline.bins) {
    const double n = b.samples > 0 ? static_cast<double>(b.samples) : 1.0;
    audio.values.push_back(static_cast<double>(b.audio_level_sum_us) / 1e6 / n);
    video.values.push_back(static_cast<double>(b.video_level_sum_us) / 1e6 / n);
    imbalance.values.push_back(static_cast<double>(b.imbalance_sum_us) / 1e6 / n);
  }
  out += "<h2>Buffers</h2>\n";
  out += svg_chart("Mean buffer levels per bin", {audio, video, imbalance}, 1.0);

  // Link utilization chart.
  if (!timeline.links.empty()) {
    std::vector<ChartSeries> link_series;
    for (const LinkSeries& link : timeline.links) {
      ChartSeries s{link.name + " busy", {}};
      for (const LinkBin& b : link.bins) {
        s.values.push_back(static_cast<double>(b.busy_us) / 1e6 / timeline.bin_s);
      }
      link_series.push_back(std::move(s));
    }
    out += "<h2>Links</h2>\n";
    out += svg_chart("Busy fraction per link per bin", link_series, 1.0);
  }

  // CDN hit-ratio chart.
  if (!timeline.cdns.empty()) {
    std::vector<ChartSeries> cdn_series;
    for (const CdnSeries& cdn : timeline.cdns) {
      const std::string name = cdn.link < timeline.links.size()
                                   ? timeline.links[cdn.link].name
                                   : format("link-%zu", cdn.link);
      ChartSeries s{name + " hit ratio", {}};
      for (const CdnBin& b : cdn.bins) {
        const std::uint64_t total = b.hits + b.misses;
        s.values.push_back(total > 0 ? static_cast<double>(b.hits) /
                                           static_cast<double>(total)
                                     : 0.0);
      }
      cdn_series.push_back(std::move(s));
    }
    out += "<h2>CDN</h2>\n";
    out += svg_chart("Edge hit ratio per node per bin", cdn_series, 1.0);
  }

  // Incident table.
  out += "<h2>Incidents</h2>\n";
  if (incidents.empty()) {
    out += "<p>No incidents detected.</p>\n";
  } else {
    out +=
        "<table>\n<tr><th class=\"ent\">type</th><th class=\"ent\">entity</th>"
        "<th>start (s)</th><th>end (s)</th><th>duration (s)</th>"
        "<th>peak</th><th>peak bin</th></tr>\n";
    for (const Incident& incident : incidents) {
      out += format(
          "<tr><td class=\"ent\">%s</td><td class=\"ent\">%s</td>"
          "<td>%.1f</td><td>%.1f</td><td>%.1f</td><td>%.3f</td>"
          "<td>%lld</td></tr>\n",
          incident_type_name(incident.type),
          html_escape(incident.entity).c_str(), incident.start_s,
          incident.end_s, incident.end_s - incident.start_s, incident.peak,
          static_cast<long long>(incident.peak_bin));
    }
    out += "</table>\n";
  }
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace demuxabr::obs
