// Incident detection over the fleet timeline (DESIGN.md §13).
//
// The telemetry bins (obs/telemetry.h) are raw series; what an operator —
// and the paper's diagnosis workflow — actually wants is episodes: "a
// stall storm from t=40s to t=55s peaking at 62% of the fleet". This layer
// extracts them with threshold-plus-hysteresis scans (enter at a high
// threshold sustained for min_bins, exit at a lower one) over three series
// families that correspond to the paper's §3 failure modes:
//   - stall storms: fraction of active sessions concurrently stalled,
//   - A/V imbalance: mean |audio − video| buffer level,
//   - link saturation: per-link busy fraction.
// Detection is a pure function of the timeline, so it inherits the
// timeline's cross-engine / cross-thread determinism for free.
//
// Tracer interop: when a Tracer is installed, detect_incidents() emits one
// kCatEngine instant at each incident's begin and end on the engine track,
// so episodes line up with engine spans in Perfetto.
//
// telemetry_report() renders the timeline + incidents as one self-contained
// HTML file (inline SVG charts, no external assets) for artifact upload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace demuxabr::obs {

enum class IncidentType {
  kStallStorm,      ///< > enter-fraction of active sessions stalled
  kAvImbalance,     ///< mean |audio − video| buffer above threshold
  kLinkSaturation,  ///< link busy fraction above threshold
};

const char* incident_type_name(IncidentType type);

/// Hysteresis thresholds per incident family. An episode opens once the
/// series holds at or above `enter` for `min_bins` consecutive bins and
/// closes when it drops below `exit` (or the timeline ends).
struct IncidentConfig {
  double stall_enter_fraction = 0.3;
  double stall_exit_fraction = 0.15;
  std::size_t stall_min_bins = 1;

  double imbalance_enter_s = 4.0;
  double imbalance_exit_s = 2.0;
  std::size_t imbalance_min_bins = 3;

  double link_busy_enter = 0.95;
  double link_busy_exit = 0.80;
  std::size_t link_min_bins = 1;
};

struct Incident {
  IncidentType type = IncidentType::kStallStorm;
  std::string entity;        ///< "fleet" or the affected link's name
  std::size_t link = 0;      ///< link index (kLinkSaturation only)
  std::int64_t start_bin = 0;
  std::int64_t end_bin = 0;  ///< inclusive
  std::int64_t peak_bin = 0;
  double start_s = 0.0;
  double end_s = 0.0;  ///< end of the last bin, (end_bin + 1) · bin_s
  double peak = 0.0;   ///< series maximum inside the episode
};

/// Scan the timeline for episodes of every incident family, ordered stall
/// storms → imbalance → link saturation (links in index order), each family
/// in start-bin order. Emits tracer instants when a tracer is installed.
std::vector<Incident> detect_incidents(const FleetTimeline& timeline,
                                       const IncidentConfig& config = {});

/// Self-contained single-file HTML report: fleet/link charts as inline SVG
/// plus the incident table. No external scripts, styles or fonts.
std::string telemetry_report(const FleetTimeline& timeline,
                             const std::vector<Incident>& incidents,
                             const std::string& title = "Fleet telemetry");

}  // namespace demuxabr::obs
