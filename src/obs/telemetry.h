// Time-binned fleet telemetry (DESIGN.md §13 "Fleet timeline telemetry").
//
// The paper's failure modes — A/V buffer imbalance, concurrent-download
// mis-estimation, stall storms under contention — are temporal phenomena:
// the paper diagnoses them from buffer trajectories and download intervals
// over time. End-of-run summaries (fleet/metrics.h) collapse the time axis
// and the per-event Tracer (obs/trace.h) is too heavy for million-client
// runs; this layer sits in between. Fleet health is accumulated into
// fixed-width bins of simulated time (TelemetryConfig::bin_s, default 1 s)
// with O(shards × bins) memory: per-bin concurrent-stall counts,
// active/started/departed sessions, mean+min audio/video buffer levels, A/V
// imbalance, a bitrate-mix histogram, per-link busy/flow/throughput series
// and per-CDN hit/miss series.
//
// Determinism and mergeability are load-bearing (same proof obligations as
// the fleet fingerprint): every accumulator is a fixed-point integer
// (llround to µs or kbit-milli at the hook site) combined only with
// wrapping adds and integer mins — associative and commutative — so
// event-ordering differences between the barrier and event-heap engines,
// and shard-merge order under run_fleet_sharded, cannot change a single
// bit. Hooks fire only at instants both engines visit identically: session
// sample ticks, link flow-population changes, CDN admissions, arrivals and
// session-clock departures. Each shard owns one TimelineShard; merge() in
// shard-id order reproduces the serial timeline byte-for-byte
// (tests/test_obs_telemetry.cpp pins engines × threads × metrics modes).
//
// Zero-overhead-when-disabled contract matches the tracer: every hook site
// is guarded by a single null-pointer test on a field the session/link
// already holds, so the disabled path costs one predictable branch (CI
// perf-smoke floors guard it).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace demuxabr::obs {

/// Switch + bin width, carried by fleet::FleetConfig. Disabled by default;
/// enabling costs O(bins) memory per shard and a few adds per hook.
struct TelemetryConfig {
  bool enabled = false;
  /// Bin width in simulated seconds. Values below the session sample
  /// period (SessionConfig::delta_s, default 0.125 s) leave per-bin session
  /// counts sparse but stay deterministic.
  double bin_s = 1.0;
};

/// Per-session dedup state so each session counts at most once per bin in
/// the active/stalled populations. Lives in the session (its samples are
/// monotone in time), costs two words, and never needs resetting.
struct TimelineCursor {
  std::int64_t active_bin = -1;
  std::int64_t stalled_bin = -1;
};

/// Sentinel for "no sample landed in this bin" minima; any real level
/// replaces it via std::min.
inline constexpr std::int64_t kTelemetryNoSample =
    std::numeric_limits<std::int64_t>::max();

/// One bin of fleet-wide session health. All fields are order-invariant
/// integer accumulators; means are derived at export time.
struct FleetBin {
  std::uint64_t samples = 0;            ///< session buffer samples landed here
  std::uint64_t active_sessions = 0;    ///< distinct sessions that sampled
  std::uint64_t stalled_sessions = 0;   ///< distinct sessions stalled
  std::uint64_t started_sessions = 0;   ///< arrivals in this bin
  std::uint64_t departed_sessions = 0;  ///< session-clock departures
  std::int64_t audio_level_sum_us = 0;  ///< Σ audio buffer level (µs)
  std::int64_t video_level_sum_us = 0;  ///< Σ video buffer level (µs)
  std::int64_t imbalance_sum_us = 0;    ///< Σ |audio − video| level (µs)
  std::int64_t audio_level_min_us = kTelemetryNoSample;
  std::int64_t video_level_min_us = kTelemetryNoSample;
};

/// One bin of one link's utilization series, accumulated from the same lazy
/// V(t)-integral segments both engines walk identically.
struct LinkBin {
  std::int64_t busy_us = 0;             ///< time with ≥1 flow (µs)
  std::int64_t flow_us = 0;             ///< ∫ flow-population dt (flow-µs)
  std::int64_t offered_kbit_mil = 0;    ///< ∫ capacity dt (kbit·milli)
  std::int64_t delivered_kbit_mil = 0;  ///< ∫ served dt while busy
};

/// One bin of one CDN edge node's admission outcomes (edge hit vs anything
/// that leaves the edge: regional hit or origin fetch).
struct CdnBin {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct LinkSeries {
  std::string name;
  std::vector<LinkBin> bins;
};

struct CdnSeries {
  std::size_t link = 0;  ///< owning link index (global after merge)
  std::vector<CdnBin> bins;
};

/// The merged, exportable timeline: what FleetResult::timeline carries.
/// merge() is the shard-combine operator; fingerprint() renders the
/// all-integer determinism witness appended to fleet_fingerprint().
struct FleetTimeline {
  double bin_s = 1.0;
  std::vector<double> ladder_kbps;  ///< bitrate-mix rungs, ascending
  std::vector<FleetBin> bins;
  /// Row-major [bin][rung] counts of completed video chunks; size is
  /// bins.size() × ladder_kbps.size() after normalize().
  std::vector<std::uint64_t> bitrate_mix;
  std::vector<LinkSeries> links;
  std::vector<CdnSeries> cdns;

  [[nodiscard]] std::size_t bin_count() const { return bins.size(); }
  [[nodiscard]] std::size_t rung_count() const { return ladder_kbps.size(); }

  /// Pad every series (fleet, mix, links, cdns) to the common maximum bin
  /// count and sort CDN series by link index. Idempotent; merge() callers
  /// run it once after the last merge.
  void normalize();

  /// Accumulate `other` (one shard's timeline) into this one. `link_map`
  /// maps other's local link indices to this timeline's global indices
  /// (nullptr = identity). Links must already exist here (pre-seeded with
  /// global names); CDN series are remapped and appended — each link
  /// belongs to exactly one shard, so no CDN series ever merges twice.
  /// The ladder is copied from the first non-empty `other`.
  void merge(const FleetTimeline& other,
             const std::vector<std::size_t>* link_map = nullptr);

  /// All-integer rendering of every bin: byte-identical across engines,
  /// thread counts and metrics modes whenever the underlying run is.
  [[nodiscard]] std::string fingerprint() const;

  /// One JSON object per line, typed "fleet" | "link" | "cdn".
  [[nodiscard]] std::string to_ndjson() const;

  /// Fleet bins only, fixed header, one row per bin.
  [[nodiscard]] std::string to_csv() const;
};

/// Per-shard accumulator and the hook sink the scheduler wires into
/// sessions, links and CDN nodes. Not thread-safe: one TimelineShard per
/// FleetScheduler, each driven by exactly one engine thread.
class TimelineShard {
 public:
  /// `ladder_kbps` is the content's declared video rung rates (sorted and
  /// deduplicated here); `link_names` fixes the link-index space — series
  /// are emitted for every name, touched or not, so indices line up with
  /// the merge-time link map.
  TimelineShard(const TelemetryConfig& config, std::vector<double> ladder_kbps,
                std::vector<std::string> link_names);

  /// Session buffer sample at tick instant `t` (both engines tick sessions
  /// at identical times). `stalled` = started but not playing.
  void sample_session(TimelineCursor& cursor, double t, double audio_level_s,
                      double video_level_s, bool stalled);

  /// A video chunk finished downloading at `t` with declared rate `kbps`
  /// (matched to the nearest ladder rung).
  void video_chunk(double t, double kbps);

  void session_started(double t);
  void session_departed(double t);

  /// One constant-rate segment [t0, t1) of link `link`'s V(t) walk, with
  /// `flows` concurrent flows and `offered_kbps` capacity; `delivered_kbps`
  /// is what the link actually served (0 when idle). Split across bin
  /// boundaries here.
  void link_segment(std::size_t link, double t0, double t1, int flows,
                    double offered_kbps, double delivered_kbps);

  /// CDN admission outcome on the node attached to `link` at time `t`.
  void cdn_request(std::size_t link, double t, bool edge_hit);

  /// Move the accumulated timeline out (normalized). The shard is spent
  /// afterwards.
  [[nodiscard]] FleetTimeline take();

 private:
  [[nodiscard]] std::int64_t bin_of(double t) const;
  FleetBin& fleet_bin(std::int64_t bin);

  TelemetryConfig config_;
  std::vector<double> ladder_;
  std::vector<std::string> link_names_;
  std::vector<FleetBin> bins_;
  std::vector<std::uint64_t> mix_;                 ///< [bin][rung] row-major
  std::vector<std::vector<LinkBin>> link_bins_;    ///< per link index
  std::vector<std::vector<CdnBin>> cdn_bins_;      ///< per link index, sparse
};

}  // namespace demuxabr::obs
