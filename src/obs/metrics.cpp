#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/strings.h"

namespace demuxabr::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Monotonic thread registration counter for shard selection.
std::atomic<std::size_t> g_next_thread{0};

/// Relaxed atomic fetch-max for doubles.
void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_release);
}

namespace detail {

std::size_t thread_shard() {
  thread_local const std::size_t shard =
      g_next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

// --- Counter -------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
}

// --- Gauge ---------------------------------------------------------------

void Gauge::set_max(double v) { atomic_max(value_, v); }

// --- Histogram -----------------------------------------------------------

Histogram::Histogram(std::string name, double first_bucket, int bucket_count)
    : name_(std::move(name)),
      first_bucket_(first_bucket > 0.0 ? first_bucket : 1e-9),
      bucket_count_(std::max(2, bucket_count)),
      shards_(detail::kShards) {
  for (auto& shard : shards_) {
    shard.buckets = std::vector<std::atomic<std::uint64_t>>(
        static_cast<std::size_t>(bucket_count_));
  }
}

int Histogram::bucket_for(double v) const {
  if (!(v > first_bucket_)) return 0;
  // Bucket i (i >= 1) spans (first * 2^(i-1), first * 2^i].
  const int i =
      static_cast<int>(std::ceil(std::log2(v / first_bucket_) - 1e-12));
  return std::min(i, bucket_count_ - 1);
}

void Histogram::observe(double v) {
  Shard& shard = shards_[detail::thread_shard()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  atomic_min(shard.min, v);
  atomic_max(shard.max, v);
  shard.buckets[static_cast<std::size_t>(bucket_for(v))].fetch_add(
      1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds.reserve(static_cast<std::size_t>(bucket_count_));
  for (int i = 0; i < bucket_count_; ++i) {
    snap.bounds.push_back(i + 1 < bucket_count_
                              ? first_bucket_ * std::exp2(i)
                              : std::numeric_limits<double>::infinity());
  }
  snap.buckets.assign(static_cast<std::size_t>(bucket_count_), 0);
  for (const auto& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, shard.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
    for (int i = 0; i < bucket_count_; ++i) {
      snap.buckets[static_cast<std::size_t>(i)] +=
          shard.buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
  }
  return snap;
}

double Histogram::Snapshot::quantile_bound(double q) const {
  if (count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) return bounds[i];
  }
  return bounds.back();
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

// --- MetricsRegistry -----------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Counter* existing = counters_.find(name)) return *existing;
  counters_.items.push_back(std::make_unique<Counter>(name));
  return *counters_.items.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Gauge* existing = gauges_.find(name)) return *existing;
  gauges_.items.push_back(std::make_unique<Gauge>(name));
  return *gauges_.items.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      double first_bucket, int bucket_count) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Histogram* existing = histograms_.find(name)) return *existing;
  histograms_.items.push_back(
      std::make_unique<Histogram>(name, first_bucket, bucket_count));
  return *histograms_.items.back();
}

std::string MetricsRegistry::to_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Sorted by name so snapshots diff cleanly.
  std::map<std::string, std::string> lines;
  for (const auto& c : counters_.items) {
    lines[c->name()] = format("%s %llu\n", c->name().c_str(),
                              static_cast<unsigned long long>(c->value()));
  }
  for (const auto& g : gauges_.items) {
    lines[g->name()] = format("%s %.6g\n", g->name().c_str(), g->value());
  }
  for (const auto& h : histograms_.items) {
    const Histogram::Snapshot snap = h->snapshot();
    lines[h->name()] = format(
        "%s count=%llu mean=%.6g min=%.6g max=%.6g p50<=%.6g p99<=%.6g\n",
        h->name().c_str(), static_cast<unsigned long long>(snap.count),
        snap.mean(), snap.count > 0 ? snap.min : 0.0,
        snap.count > 0 ? snap.max : 0.0, snap.quantile_bound(0.50),
        snap.quantile_bound(0.99));
  }
  std::string out;
  for (const auto& [name, line] : lines) out += line;
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::string> counters, gauges, histograms;
  for (const auto& c : counters_.items) {
    counters[c->name()] =
        format("%llu", static_cast<unsigned long long>(c->value()));
  }
  for (const auto& g : gauges_.items) {
    gauges[g->name()] = format("%.6g", g->value());
  }
  for (const auto& h : histograms_.items) {
    const Histogram::Snapshot snap = h->snapshot();
    std::string buckets;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;  // sparse: most buckets are empty
      if (!buckets.empty()) buckets += ',';
      buckets += format("{\"le\":%.6g,\"n\":%llu}",
                        snap.bounds[i],
                        static_cast<unsigned long long>(snap.buckets[i]));
    }
    histograms[h->name()] = format(
        "{\"count\":%llu,\"sum\":%.6g,\"min\":%.6g,\"max\":%.6g,"
        "\"buckets\":[%s]}",
        static_cast<unsigned long long>(snap.count), snap.sum,
        snap.count > 0 ? snap.min : 0.0, snap.count > 0 ? snap.max : 0.0,
        buckets.c_str());
  }

  const auto object = [](const std::map<std::string, std::string>& entries) {
    std::string out = "{";
    bool first = true;
    for (const auto& [name, value] : entries) {
      if (!first) out += ',';
      first = false;
      out += '"' + name + "\":" + value;
    }
    return out + "}";
  };
  return "{\"counters\":" + object(counters) + ",\"gauges\":" + object(gauges) +
         ",\"histograms\":" + object(histograms) + "}";
}

std::string MetricsRegistry::scrape_json() const {
  return "{\"schema\":\"demuxabr.metrics.v1\",\"metrics\":" + to_json() + "}";
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_.items) c->reset();
  for (const auto& g : gauges_.items) g->reset();
  for (const auto& h : histograms_.items) h->reset();
}

}  // namespace demuxabr::obs
