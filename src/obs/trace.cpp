#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "util/strings.h"

namespace demuxabr::obs {
namespace {

std::atomic<Tracer*> g_tracer{nullptr};
}  // namespace

namespace detail {
std::atomic<unsigned> g_trace_categories{0};
}  // namespace detail

namespace {
std::atomic<std::uint64_t> g_next_serial{1};

/// Per-thread shard cache: re-registers (cheaply) whenever the thread first
/// emits to a tracer with a serial it has not seen.
struct ThreadShardCache {
  std::uint64_t serial = 0;
  void* shard = nullptr;
};
thread_local ThreadShardCache t_shard_cache;

const char* kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kBegin: return "begin";
    case TraceEvent::Kind::kEnd: return "end";
    case TraceEvent::Kind::kInstant: return "instant";
    case TraceEvent::Kind::kCounter: return "counter";
  }
  return "?";
}

const char* chrome_phase(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kBegin: return "B";
    case TraceEvent::Kind::kEnd: return "E";
    case TraceEvent::Kind::kInstant: return "i";
    case TraceEvent::Kind::kCounter: return "C";
  }
  return "i";
}

}  // namespace

const char* lane_name(std::uint8_t lane) {
  switch (lane) {
    case kLanePlayback: return "playback";
    case kLaneVideo: return "video";
    case kLaneAudio: return "audio";
    case kLaneAbr: return "abr";
  }
  return "lane";
}

const char* category_name(Category category) {
  switch (category) {
    case kCatDownload: return "download";
    case kCatAbr: return "abr";
    case kCatBuffer: return "buffer";
    case kCatStall: return "stall";
    case kCatLink: return "link";
    case kCatEngine: return "engine";
    default: return "multi";
  }
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- TraceArgs -----------------------------------------------------------

void TraceArgs::key(const char* k) {
  if (!out_.empty()) out_ += ',';
  out_ += '"';
  out_ += k;
  out_ += "\":";
}

TraceArgs&& TraceArgs::kv(const char* k, double value) && {
  key(k);
  out_ += format("%.6g", value);
  return std::move(*this);
}

TraceArgs&& TraceArgs::kv(const char* k, std::int64_t value) && {
  key(k);
  out_ += format("%lld", static_cast<long long>(value));
  return std::move(*this);
}

TraceArgs&& TraceArgs::kv(const char* k, std::string_view value) && {
  key(k);
  out_ += '"';
  out_ += json_escape(value);
  out_ += '"';
  return std::move(*this);
}

// --- Tracer --------------------------------------------------------------

Tracer::Tracer(unsigned categories)
    : categories_(categories & kCatAll),
      serial_(g_next_serial.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::Shard& Tracer::local_shard() {
  ThreadShardCache& cache = t_shard_cache;
  if (cache.serial != serial_ || cache.shard == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    cache.shard = shards_.back().get();
    cache.serial = serial_;
  }
  return *static_cast<Shard*>(cache.shard);
}

void Tracer::emit(TraceEvent event) {
  local_shard().events.push_back(std::move(event));
}

void Tracer::name_track(std::uint32_t track, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  track_names_.emplace(track, std::move(name));
}

void Tracer::drain_to(TraceSink& sink) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [track, name] : track_names_) sink.track_name(track, name);
  for (const auto& shard : shards_) {
    for (const TraceEvent& event : shard->events) sink.event(event);
  }
  sink.finish();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->events.size();
  return n;
}

Tracer* tracer() { return g_tracer.load(std::memory_order_acquire); }

void install_tracer(Tracer* t) {
  // Categories gate the fast path: publish them only while installed, so a
  // single relaxed load answers "is anything listening for cat?".
  detail::g_trace_categories.store(t != nullptr ? t->categories() : 0u,
                                   std::memory_order_release);
  g_tracer.store(t, std::memory_order_release);
}

// --- NdjsonSink ----------------------------------------------------------

void NdjsonSink::track_name(std::uint32_t track, const std::string& name) {
  out_ << "{\"meta\":\"track_name\",\"track\":" << track << ",\"name\":\""
       << json_escape(name) << "\"}\n";
}

void NdjsonSink::event(const TraceEvent& e) {
  out_ << "{\"kind\":\"" << kind_name(e.kind) << "\",\"cat\":\""
       << category_name(e.category) << "\",\"name\":\"" << e.name
       << "\",\"track\":" << e.track << ",\"lane\":" << int{e.lane}
       << ",\"t\":" << format("%.9g", e.t_s);
  if (!e.args.empty()) out_ << ",\"args\":{" << e.args << '}';
  out_ << "}\n";
}

// --- ChromeTraceSink -----------------------------------------------------

void ChromeTraceSink::track_name(std::uint32_t track, const std::string& name) {
  names_[track] = name;
}

void ChromeTraceSink::event(const TraceEvent& e) { events_.push_back(e); }

void ChromeTraceSink::finish() {
  // Stable sort keeps same-timestamp events in emission order — each track
  // is emitted by one thread, so per-track order (and B/E pairing) is
  // preserved while the global stream becomes time-ordered.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t_s < b.t_s;
                   });

  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    out_ << (first ? "\n" : ",\n");
    first = false;
  };

  // Process metadata: one Chrome process per named track, sorted by id so
  // sessions line up above links in the viewer.
  for (const auto& [track, name] : names_) {
    sep();
    out_ << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << track
         << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
    sep();
    out_ << "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":" << track
         << ",\"tid\":0,\"args\":{\"sort_index\":" << track << "}}";
  }
  // Thread metadata: name every (track, lane) that actually carries events.
  std::map<std::uint32_t, unsigned> lanes_seen;
  for (const TraceEvent& e : events_) {
    if (e.kind != TraceEvent::Kind::kCounter) {
      lanes_seen[e.track] |= 1u << e.lane;
    }
  }
  for (const auto& [track, mask] : lanes_seen) {
    for (std::uint8_t lane = 0; lane < 8; ++lane) {
      if ((mask & (1u << lane)) == 0) continue;
      sep();
      out_ << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << track
           << ",\"tid\":" << int{lane} << ",\"args\":{\"name\":\""
           << lane_name(lane) << "\"}}";
    }
  }

  for (const TraceEvent& e : events_) {
    sep();
    out_ << "{\"ph\":\"" << chrome_phase(e.kind) << "\",\"cat\":\""
         << category_name(e.category) << "\",\"name\":\"" << e.name
         << "\",\"pid\":" << e.track << ",\"tid\":" << int{e.lane}
         << ",\"ts\":" << format("%.3f", e.t_s * 1e6);
    if (e.kind == TraceEvent::Kind::kInstant) out_ << ",\"s\":\"t\"";
    if (!e.args.empty()) out_ << ",\"args\":{" << e.args << '}';
    out_ << '}';
  }
  out_ << "\n]}\n";
}

}  // namespace demuxabr::obs
