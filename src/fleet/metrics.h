// Fleet-level aggregate metrics: the cross-client view the paper's
// single-session figures cannot show — fairness of the bitrate allocation,
// the stall-ratio tail, link utilization and the A/V buffer-imbalance
// distribution (§3.4) across a whole population.
#pragma once

#include <string>
#include <vector>

#include "fleet/shared_link.h"
#include "fleet/topology.h"
#include "media/track.h"
#include "obs/profile.h"
#include "sim/metrics.h"
#include "util/stats.h"

namespace demuxabr::fleet {

/// Outcome of one client of a fleet run.
struct ClientResult {
  int id = 0;
  std::string player;
  double arrival_s = 0.0;
  bool departed_early = false;  ///< churned out before content end
  /// Topology runs only: path indices this client's media rode (audio ==
  /// video unless the spec splits audio). -1 for single-link fleets.
  int video_path = -1;
  int audio_path = -1;
  SessionLog log;
  QoeReport qoe;
};

/// Outcome of one fleet run: per-client results (client-id order) plus
/// shared-link accounting.
struct FleetResult {
  std::vector<ClientResult> clients;
  LinkStats video_link;
  LinkStats audio_link;  ///< duplicate of video_link when !split_audio
  /// Topology runs: per-link stats in link-declaration order (video_link
  /// then aliases the first entry for convenience) plus per-path closing
  /// summaries. Both empty for single-link fleets.
  std::vector<LinkStats> links;
  std::vector<PathSummary> paths;
  bool split_audio = false;
  double end_time_s = 0.0;  ///< wall time at which the last client finished
  /// Engine work units executed: global barriers (kBarrier) or heap events
  /// (kEventHeap). Diagnostic only — excluded from fleet_fingerprint.
  std::size_t steps = 0;
  /// Engine self-profile: heap counters always (event-heap engine), phase
  /// wall-clock when FleetConfig::profile. Diagnostic only — excluded from
  /// fleet_fingerprint.
  obs::EngineProfile profile;
};

/// Cross-client aggregates of one fleet run.
struct FleetMetrics {
  int clients = 0;
  int completed = 0;       ///< playhead reached content end
  int departed_early = 0;  ///< churned out

  /// Jain fairness of per-client average selected video bitrate.
  double jain_fairness_video = 0.0;
  /// Jain fairness of per-client download throughput (bytes / active time).
  double jain_fairness_throughput = 0.0;

  PercentileSummary video_kbps;          ///< per-client avg selected video bitrate
  PercentileSummary stall_ratio;         ///< per-client stall_s / session wall time
  PercentileSummary startup_delay_s;     ///< per-client startup delay
  PercentileSummary buffer_imbalance_s;  ///< per-client mean |audio - video| buffer

  double mean_qoe = 0.0;

  /// Per-path aggregates of a topology run (the per-edge fairness table of
  /// EXPERIMENTS.md). Grouped by the clients' video path; empty for
  /// single-link fleets.
  struct PathGroup {
    std::string name;
    int clients = 0;
    double jain_fairness_video = 0.0;
    double jain_fairness_throughput = 0.0;
    double mean_video_kbps = 0.0;
    double mean_stall_ratio = 0.0;
  };
  std::vector<PathGroup> path_groups;
};

/// Aggregate a fleet run; per-client QoE must already be populated (the
/// scheduler does this).
FleetMetrics compute_fleet_metrics(const FleetResult& result);

/// Deterministic serialization of everything that identifies a fleet
/// outcome: per-client arrival/departure/selection/stall/download accounting
/// plus link stats. Two runs are behaviourally identical iff their
/// fingerprints compare equal — the determinism contract of
/// tests/test_fleet.cpp.
std::string fleet_fingerprint(const FleetResult& result);

/// Human-readable report block (fleet_demo, bench_fleet stdout).
std::string summarize(const FleetResult& result, const FleetMetrics& metrics);

}  // namespace demuxabr::fleet
