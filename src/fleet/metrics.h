// Fleet-level aggregate metrics: the cross-client view the paper's
// single-session figures cannot show — fairness of the bitrate allocation,
// the stall-ratio tail, link utilization and the A/V buffer-imbalance
// distribution (§3.4) across a whole population.
#pragma once

#include <string>
#include <vector>

#include <cstdint>
#include <optional>

#include "fleet/cdn_fleet.h"
#include "fleet/shared_link.h"
#include "fleet/topology.h"
#include "media/track.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "sim/metrics.h"
#include "util/sketch.h"
#include "util/stats.h"

namespace demuxabr::fleet {

/// Outcome of one client of a fleet run.
struct ClientResult {
  int id = 0;
  std::string player;
  double arrival_s = 0.0;
  bool departed_early = false;  ///< churned out before content end
  /// Topology runs only: path indices this client's media rode (audio ==
  /// video unless the spec splits audio). -1 for single-link fleets.
  int video_path = -1;
  int audio_path = -1;
  SessionLog log;
  QoeReport qoe;
};

/// O(1)-per-client aggregation of a fleet run for streaming-metrics mode:
/// above FleetConfig::streaming.client_threshold the scheduler retires each
/// client into this instead of keeping its ClientResult, so resident memory
/// is O(shards + sketch buckets) rather than O(clients × log length). Every
/// field merges associatively and commutatively — integer counts, exact
/// moment sums (Jain fairness needs only Σx and Σx²) and mergeable
/// QuantileSketches — so per-shard instances pooled in shard-id order equal
/// the aggregate of the whole population (DESIGN.md §10).
struct StreamingFleetStats {
  std::size_t clients = 0;
  std::size_t completed = 0;
  std::size_t departed_early = 0;
  double qoe_sum = 0.0;
  /// Aggregate simulated session-seconds (Σ end − arrival): the
  /// sim-throughput numerator benchmarks report when no per-client logs
  /// exist to sum over.
  double active_s_sum = 0.0;
  /// First and second moments of the per-client fairness variables.
  double video_kbps_sum = 0.0;
  double video_kbps_sq_sum = 0.0;
  double throughput_sum = 0.0;
  double throughput_sq_sum = 0.0;
  QuantileSketch video_kbps;
  QuantileSketch stall_ratio;
  QuantileSketch startup_delay_s;
  QuantileSketch buffer_imbalance_s;

  /// Per-video-path accumulators (topology runs; indexed like
  /// FleetResult::paths). Enough for the PathGroup table: counts, moments
  /// and the stall-ratio sum.
  struct PathAcc {
    std::size_t clients = 0;
    double video_sum = 0.0;
    double video_sq_sum = 0.0;
    double throughput_sum = 0.0;
    double throughput_sq_sum = 0.0;
    double stall_ratio_sum = 0.0;
  };
  std::vector<PathAcc> paths;

  explicit StreamingFleetStats(double relative_error = 0.01);

  /// Fold one retired client in. The scalars mirror compute_fleet_metrics'
  /// per-client derivations exactly.
  void add_client(const ClientResult& client);

  /// Pool `other` into this. `path_map` (when given) maps other.paths
  /// indices to this->paths indices — the shard runner's local→global path
  /// renumbering; nullptr means identical indexing.
  void merge(const StreamingFleetStats& other,
             const std::vector<std::size_t>* path_map = nullptr);
};

/// Outcome of one fleet run: per-client results (client-id order) plus
/// shared-link accounting.
struct FleetResult {
  std::vector<ClientResult> clients;
  /// Streaming-metrics mode only: the O(shards) aggregate that replaces
  /// `clients` (which stays empty) above the streaming threshold.
  std::optional<StreamingFleetStats> streaming;
  /// Order-invariant digest of every client's outcome scalars (wrapping sum
  /// of per-client FNV-1a hashes over SessionTotals + lifecycle fields).
  /// Identical across engines, thread counts and streaming/full modes — the
  /// determinism handle when per-client logs are not retained.
  std::uint64_t client_digest = 0;
  LinkStats video_link;
  LinkStats audio_link;  ///< duplicate of video_link when !split_audio
  /// Topology runs: per-link stats in link-declaration order (video_link
  /// then aliases the first entry for convenience) plus per-path closing
  /// summaries. Both empty for single-link fleets.
  std::vector<LinkStats> links;
  std::vector<PathSummary> paths;
  /// Cache-aware runs: per-CDN-node closing stats, ascending link index
  /// (fleet/cdn_fleet.h). Part of the fingerprint — all-integer counters.
  std::vector<CdnStats> cdns;
  bool split_audio = false;
  double end_time_s = 0.0;  ///< wall time at which the last client finished
  /// Engine work units executed: global barriers (kBarrier) or heap events
  /// (kEventHeap). Diagnostic only — excluded from fleet_fingerprint.
  std::size_t steps = 0;
  /// Engine self-profile: heap counters always (event-heap engine), phase
  /// wall-clock when FleetConfig::profile. Diagnostic only — excluded from
  /// fleet_fingerprint.
  obs::EngineProfile profile;
  /// Time-binned fleet health series (obs/telemetry.h), populated when
  /// FleetConfig::telemetry.enabled. Part of the fingerprint: the
  /// all-integer timeline block is byte-identical across engines, thread
  /// counts and metrics modes.
  std::optional<obs::FleetTimeline> timeline;
};

/// Cross-client aggregates of one fleet run.
struct FleetMetrics {
  int clients = 0;
  int completed = 0;       ///< playhead reached content end
  int departed_early = 0;  ///< churned out

  /// Jain fairness of per-client average selected video bitrate.
  double jain_fairness_video = 0.0;
  /// Jain fairness of per-client download throughput (bytes / active time).
  double jain_fairness_throughput = 0.0;

  PercentileSummary video_kbps;          ///< per-client avg selected video bitrate
  PercentileSummary stall_ratio;         ///< per-client stall_s / session wall time
  PercentileSummary startup_delay_s;     ///< per-client startup delay
  PercentileSummary buffer_imbalance_s;  ///< per-client mean |audio - video| buffer

  double mean_qoe = 0.0;

  /// Per-path aggregates of a topology run (the per-edge fairness table of
  /// EXPERIMENTS.md). Grouped by the clients' video path; empty for
  /// single-link fleets.
  struct PathGroup {
    std::string name;
    int clients = 0;
    double jain_fairness_video = 0.0;
    double jain_fairness_throughput = 0.0;
    double mean_video_kbps = 0.0;
    double mean_stall_ratio = 0.0;
  };
  std::vector<PathGroup> path_groups;
};

/// Aggregate a fleet run; per-client QoE must already be populated (the
/// scheduler does this). Streaming-mode results aggregate from the
/// StreamingFleetStats instead of the (empty) client vector; percentile
/// fields are then sketch-approximate (within the sketch's relative error),
/// counts/means/fairness exact.
FleetMetrics compute_fleet_metrics(const FleetResult& result);

/// FNV-1a hash of one client's outcome scalars (the SessionTotals choke-
/// point aggregates plus lifecycle fields) — every input is bit-identical
/// across engines and log modes. Summed with wraparound into
/// FleetResult::client_digest so the total is independent of retirement
/// and merge order.
std::uint64_t client_outcome_digest(const ClientResult& client);

/// Deterministic serialization of everything that identifies a fleet
/// outcome: per-client arrival/departure/selection/stall/download accounting
/// plus link stats. Two runs are behaviourally identical iff their
/// fingerprints compare equal — the determinism contract of
/// tests/test_fleet.cpp.
std::string fleet_fingerprint(const FleetResult& result);

/// Human-readable report block (fleet_demo, bench_fleet stdout).
std::string summarize(const FleetResult& result, const FleetMetrics& metrics);

}  // namespace demuxabr::fleet
