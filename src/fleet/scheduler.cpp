#include "fleet/scheduler.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <limits>
#include <utility>

#include "util/thread_pool.h"

namespace demuxabr::fleet {
namespace {
constexpr double kEps = 1e-9;
}  // namespace

FleetScheduler::FleetScheduler(const Content& content, ManifestView view,
                               BandwidthTrace bottleneck, FleetConfig config,
                               std::optional<BandwidthTrace> audio_trace)
    : content_(content),
      view_(std::move(view)),
      config_(std::move(config)),
      video_link_(std::move(bottleneck),
                  audio_trace.has_value() ? "video-bottleneck" : "bottleneck") {
  if (audio_trace.has_value()) {
    audio_link_.emplace(std::move(*audio_trace), "audio-bottleneck");
  }
}

void FleetScheduler::admit(const ClientPlan& plan) {
  Client client;
  client.plan = plan;
  client.player = config_.players[plan.player_index].factory();

  Network network;
  network.video_link = video_link_.link();
  network.audio_link = audio_link_.has_value() ? audio_link_->link() : video_link_.link();
  network.rtt_s = config_.rtt_s;

  SessionConfig session_config = config_.session;
  session_config.start_time_s = plan.arrival_s;
  // The base max_sim_time_s is the per-client budget; the session cap is
  // absolute wall time.
  session_config.max_sim_time_s = plan.arrival_s + config_.session.max_sim_time_s;

  client.session = std::make_unique<StreamingSession>(
      content_, view_, std::move(network), *client.player, session_config);
  client.session->start();
  active_.push_back(std::move(client));
}

FleetResult FleetScheduler::run() {
  assert(!config_.players.empty() && "FleetConfig::players must be non-empty");
  const std::vector<ClientPlan> plans = plan_population(config_);
  result_.clients.reserve(plans.size());
  result_.split_audio = audio_link_.has_value();

  double now = 0.0;
  std::size_t next_arrival = 0;
  const auto admit_due = [&] {
    while (next_arrival < plans.size() &&
           plans[next_arrival].arrival_s <= now + kEps) {
      admit(plans[next_arrival]);
      ++next_arrival;
    }
  };
  const auto finalize = [&](Client& client) {
    ClientResult outcome;
    outcome.id = client.plan.id;
    outcome.player = client.plan.player_label;
    outcome.arrival_s = client.plan.arrival_s;
    outcome.departed_early = !client.session->log().completed &&
                             client.plan.leave_at_s <= now + kEps;
    outcome.log = client.session->finish();
    outcome.qoe = compute_qoe(outcome.log, content_.ladder());
    result_.clients.push_back(std::move(outcome));
  };

  admit_due();
  while (!active_.empty() || next_arrival < plans.size()) {
    // Churn: abandon sessions whose planned departure has passed. The abort
    // releases their shared-link slots before anyone computes a horizon.
    for (Client& client : active_) {
      if (!client.session->done() && now + kEps >= client.plan.leave_at_s) {
        client.session->abort_session();
      }
    }
    // Retire finished sessions (content end, churn, or sim-time cap).
    for (auto it = active_.begin(); it != active_.end();) {
      if (it->session->done()) {
        finalize(*it);
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
    if (active_.empty()) {
      if (next_arrival >= plans.size()) break;
      now = std::max(now, plans[next_arrival].arrival_s);
      admit_due();
      continue;
    }

    // Phase 1: registration barrier — every session's due flows join their
    // links before any horizon is computed.
    for (Client& client : active_) client.session->begin_step();

    // Phase 2: global horizon.
    double t = std::numeric_limits<double>::infinity();
    for (Client& client : active_) {
      t = std::min(t, client.session->next_event_time());
    }
    if (next_arrival < plans.size()) {
      t = std::min(t, plans[next_arrival].arrival_s);
    }
    for (const Client& client : active_) {
      if (client.plan.leave_at_s > now) t = std::min(t, client.plan.leave_at_s);
    }
    t = std::max(t, now);

    // Phase 3: utilization accounting over [now, t] with the flow counts
    // frozen for the interval.
    video_link_.observe(now, t);
    if (audio_link_.has_value()) audio_link_->observe(now, t);

    // Phase 4: integrate everyone through [now, t] *before* any events fire
    // — a completion inside integrate order would change link counts
    // mid-interval for sessions integrated later.
    for (Client& client : active_) client.session->integrate_to(t);
    now = t;

    // Phase 5: event barrier, client-id order (deterministic).
    for (Client& client : active_) client.session->process_events();
    ++result_.steps;

    // Phase 6: admissions exactly at t join before the next barrier.
    admit_due();
  }

  // Clients finalize in retirement order; re-sort to client-id order so the
  // result layout is stable regardless of who finished first.
  std::sort(result_.clients.begin(), result_.clients.end(),
            [](const ClientResult& a, const ClientResult& b) { return a.id < b.id; });
  result_.video_link = video_link_.stats();
  result_.audio_link = audio_link_.has_value() ? audio_link_->stats() : result_.video_link;
  result_.end_time_s = now;
  return std::move(result_);
}

FleetResult run_fleet(const Content& content, const ManifestView& view,
                      const BandwidthTrace& bottleneck, const FleetConfig& config) {
  FleetScheduler scheduler(content, view, bottleneck, config);
  return scheduler.run();
}

std::vector<FleetReplication> run_replications(const Content& content,
                                               const ManifestView& view,
                                               const BandwidthTrace& bottleneck,
                                               const FleetConfig& config,
                                               const ReplicationOptions& options) {
  const int count = std::max(1, options.replications);
  const int threads = options.threads > 0
                          ? options.threads
                          : static_cast<int>(ThreadPool::default_thread_count());

  const auto run_one = [&](int replication) {
    FleetReplication rep;
    rep.seed = config.seed +
               static_cast<std::uint64_t>(replication) * options.seed_stride;
    FleetConfig seeded = config;
    seeded.seed = rep.seed;
    rep.result = run_fleet(content, view, bottleneck, seeded);
    rep.metrics = compute_fleet_metrics(rep.result);
    return rep;
  };

  std::vector<FleetReplication> replications(static_cast<std::size_t>(count));
  if (threads <= 1) {
    for (int r = 0; r < count; ++r) replications[static_cast<std::size_t>(r)] = run_one(r);
  } else {
    ThreadPool pool(static_cast<unsigned>(threads));
    std::vector<std::future<FleetReplication>> futures;
    futures.reserve(static_cast<std::size_t>(count));
    for (int r = 0; r < count; ++r) {
      futures.push_back(pool.submit([&run_one, r] { return run_one(r); }));
    }
    // Collected in submission order: completion order never leaks through.
    for (int r = 0; r < count; ++r) {
      replications[static_cast<std::size_t>(r)] = futures[static_cast<std::size_t>(r)].get();
    }
  }
  return replications;
}

}  // namespace demuxabr::fleet
