#include "fleet/scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "fleet/event_heap.h"
#include "fleet/shard.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/indexed_min_heap.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace demuxabr::fleet {

FleetScheduler::FleetScheduler(const Content& content, ManifestView view,
                               BandwidthTrace bottleneck, FleetConfig config,
                               std::optional<BandwidthTrace> audio_trace)
    : content_(content),
      view_(std::move(view)),
      config_(std::move(config)),
      video_link_(std::move(bottleneck),
                  audio_trace.has_value() ? "video-bottleneck" : "bottleneck",
                  &arena_) {
  if (config_.topology.has_value()) {
    topology_.emplace(*config_.topology, &arena_);
    if (topology_->has_caches()) {
      // Cache-aware run: one shard-local cache plane routing every session's
      // flows. The shard runner pre-builds the catalog and shares it
      // read-only across shards; a serial run builds its own here.
      catalog_ = config_.cdn.catalog != nullptr
                     ? config_.cdn.catalog
                     : make_fleet_catalog(content_, config_.cdn.storage);
      cdn_ = std::make_unique<CdnState>(*config_.topology, *topology_, catalog_);
    }
  } else if (audio_trace.has_value()) {
    audio_link_.emplace(std::move(*audio_trace), "audio-bottleneck", &arena_);
  }
  if (config_.telemetry.enabled) {
    // Build the shard-local timeline accumulator. Link slot order matches
    // the topology's link-declaration order (or video then audio for plain
    // fleets), so the shard runner's link_ids map applies directly.
    std::vector<std::string> link_names;
    if (config_.topology.has_value()) {
      link_names.reserve(config_.topology->links.size());
      for (const LinkSpec& link : config_.topology->links) {
        link_names.push_back(link.name);
      }
    } else {
      link_names.push_back(video_link_.name());
      if (audio_link_.has_value()) link_names.push_back(audio_link_->name());
    }
    std::vector<double> ladder;
    ladder.reserve(content_.ladder().video().size());
    for (const TrackInfo& track : content_.ladder().video()) {
      ladder.push_back(track.avg_kbps);
    }
    telemetry_ = std::make_unique<obs::TimelineShard>(
        config_.telemetry, std::move(ladder), std::move(link_names));
    if (topology_.has_value()) {
      topology_->set_telemetry(telemetry_.get());
    } else {
      video_link_.link()->set_telemetry(telemetry_.get(), 0);
      if (audio_link_.has_value()) {
        audio_link_->link()->set_telemetry(telemetry_.get(), 1);
      }
    }
    if (cdn_ != nullptr) cdn_->set_telemetry(telemetry_.get());
  }
}

FleetScheduler::Client& FleetScheduler::admit(const ClientPlan& plan) {
  auto client = std::make_unique<Client>();
  client->plan = plan;
  client->player = config_.players[plan.player_index].factory();

  Network network;
  if (topology_.has_value()) {
    const std::size_t video_path = topology_->video_path_for(plan.id);
    const std::size_t audio_path = topology_->audio_path_for(plan.id);
    client->video_path = static_cast<int>(video_path);
    client->audio_path = static_cast<int>(audio_path);
    network.video_link = topology_->path_channel(video_path);
    network.audio_link = audio_path == video_path
                             ? network.video_link
                             : topology_->path_channel(audio_path);
  } else {
    network.video_link = video_link_.link();
    network.audio_link =
        audio_link_.has_value() ? audio_link_->link() : video_link_.link();
  }
  network.rtt_s = config_.rtt_s;
  network.router = cdn_.get();  // null for cache-less fleets

  SessionConfig session_config = config_.session;
  if (streaming_) {
    // Streaming-metrics mode: no per-session vectors, no series — the
    // session maintains SessionTotals only (O(1) memory per session).
    session_config.minimal_log = true;
    session_config.record_series = false;
  }
  session_config.start_time_s = plan.arrival_s;
  // The base max_sim_time_s is the per-client budget; the session cap is
  // absolute wall time.
  session_config.max_sim_time_s = plan.arrival_s + config_.session.max_sim_time_s;
  // Completion-registry tokens on the shared links: audio 2*id, video 2*id+1.
  session_config.flow_token_base = 2u * static_cast<std::uint32_t>(plan.id);
  // One trace track per session, keyed by client id.
  session_config.trace_track = static_cast<std::uint32_t>(plan.id);
  // Pending-delivery queues (cache-aware fleets) draw from the shard arena.
  session_config.arena = &arena_;
  session_config.telemetry = telemetry_.get();
  if (telemetry_ != nullptr) telemetry_->session_started(plan.arrival_s);
  if (obs::Tracer* tr = obs::tracer()) {
    tr->name_track(session_config.trace_track,
                   format("c%d %s", plan.id, plan.player_label.c_str()));
  }
  DMX_COUNT("fleet.admitted", 1);

  client->session = std::make_unique<StreamingSession>(
      content_, view_, std::move(network), *client->player, session_config);
  client->session->start();

  auto& slot = slots_[static_cast<std::size_t>(plan.id)];
  slot = std::move(client);
  return *slot;
}

void FleetScheduler::finalize_client(Client& client, double now) {
  ClientResult outcome;
  outcome.id = client.plan.id;
  outcome.player = client.plan.player_label;
  outcome.arrival_s = client.plan.arrival_s;
  outcome.video_path = client.video_path;
  outcome.audio_path = client.audio_path;
  outcome.departed_early =
      !client.session->log().completed && client.plan.leave_at_s <= now;
  outcome.log = client.session->finish();
  outcome.qoe = compute_qoe(outcome.log, content_.ladder());
  if (telemetry_ != nullptr) {
    // Session-clock departure time: digest-covered, so engine-identical.
    telemetry_->session_departed(outcome.log.end_time_s);
  }
  // Wrapping uint64 sum of per-client hashes: retirement order (which
  // differs between engines and shard decompositions) cannot leak.
  result_.client_digest += client_outcome_digest(outcome);
  if (streaming_) {
    result_.streaming->add_client(outcome);
  } else {
    result_.clients.push_back(std::move(outcome));
  }
  DMX_COUNT("fleet.retired", 1);
  // Release the session and player: long fleets churn through thousands of
  // clients and only a fraction are ever concurrently active.
  client.session.reset();
  client.player.reset();
}

FleetResult FleetScheduler::run() {
  assert(!config_.players.empty() && "FleetConfig::players must be non-empty");
  return run_plans(plan_population(config_));
}

FleetResult FleetScheduler::run_plans(const std::vector<ClientPlan>& plans) {
  FleetResult result = run_engine(plans);
  close_links(result, result.end_time_s);
  return result;
}

FleetResult FleetScheduler::run_engine(const std::vector<ClientPlan>& plans) {
  assert(!config_.players.empty() && "FleetConfig::players must be non-empty");
  streaming_ = config_.streaming.enabled_for(plans.size());
  if (streaming_) {
    result_.streaming.emplace(config_.streaming.relative_error);
    result_.streaming->paths.resize(
        topology_.has_value() ? topology_->path_count() : 0);
  } else {
    result_.clients.reserve(plans.size());
  }
  result_.split_audio =
      topology_.has_value() ? topology_->split_audio() : audio_link_.has_value();
  slots_.resize(plans.size());

  // Trace tracks: links and the engine live in their own id namespaces.
  if (topology_.has_value()) {
    topology_->name_trace_tracks();
  } else {
    video_link_.link()->set_trace_track(obs::kLinkTrackBase);
    if (audio_link_.has_value()) {
      audio_link_->link()->set_trace_track(obs::kLinkTrackBase + 1);
    }
  }
  if (obs::Tracer* tr = obs::tracer()) {
    if (!topology_.has_value()) {
      tr->name_track(obs::kLinkTrackBase, "link " + video_link_.name());
      if (audio_link_.has_value()) {
        tr->name_track(obs::kLinkTrackBase + 1, "link " + audio_link_->name());
      }
    }
    tr->name_track(obs::kEngineTrack,
                   resolve_engine(config_.engine, plans.size()) == Engine::kBarrier
                       ? "engine barrier"
                       : "engine event_heap");
  }

  const double end_time =
      resolve_engine(config_.engine, plans.size()) == Engine::kBarrier
          ? run_barrier(plans)
          : run_event_heap(plans);
  DMX_COUNT("fleet.steps", result_.steps);

  // Clients finalize in retirement order; re-sort to client-id order so the
  // result layout is stable regardless of who finished first.
  std::sort(result_.clients.begin(), result_.clients.end(),
            [](const ClientResult& a, const ClientResult& b) { return a.id < b.id; });
  result_.end_time_s = end_time;
  return std::move(result_);
}

void FleetScheduler::close_links(FleetResult& result, double end_time) {
  if (topology_.has_value()) {
    topology_->finalize(end_time);
    result.links = topology_->link_stats();
    result.paths = topology_->path_stats();
    // Convenience aliases so single-link consumers keep working; the
    // fingerprint serializes result.links instead.
    result.video_link = result.links.front();
    result.audio_link = result.video_link;
    if (cdn_ != nullptr) result.cdns = cdn_->stats();
  } else {
    video_link_.finalize(end_time);
    if (audio_link_.has_value()) audio_link_->finalize(end_time);
    result.video_link = video_link_.stats();
    result.audio_link =
        audio_link_.has_value() ? audio_link_->stats() : result.video_link;
  }
  if (telemetry_ != nullptr) {
    // After link finalization: the finalize walks emit the idle-tail
    // segments, so the binned link series cover [0, end_time].
    result.timeline = telemetry_->take();
  }
}

double FleetScheduler::run_barrier(const std::vector<ClientPlan>& plans) {
  std::vector<Client*> active;  ///< client-id order within every barrier
  // Sorted departure index: finite leave times keyed by client id. Makes
  // the per-step churn check and the churn horizon O(1) instead of O(N)
  // scans over every active session.
  IndexedMinHeap departures;
  double now = 0.0;
  std::size_t next_arrival = 0;

  const auto admit_due = [&] {
    while (next_arrival < plans.size() && plans[next_arrival].arrival_s <= now) {
      Client& client = admit(plans[next_arrival]);
      ++next_arrival;
      // Keep `active` in client-id order: the event-heap engine breaks
      // same-time ties by client id, so the barrier must fire them the
      // same way (arrival order and id order differ under Poisson).
      const auto at = std::lower_bound(
          active.begin(), active.end(), &client,
          [](const Client* a, const Client* b) { return a->plan.id < b->plan.id; });
      active.insert(at, &client);
      if (std::isfinite(client.plan.leave_at_s)) {
        departures.update(static_cast<std::uint32_t>(client.plan.id),
                          client.plan.leave_at_s);
      }
    }
  };

  admit_due();
  while (!active.empty() || next_arrival < plans.size()) {
    // Churn: abandon sessions whose planned departure has passed. The abort
    // releases their shared-link slots before anyone computes a horizon.
    while (!departures.empty() && departures.top().key <= now) {
      const std::uint32_t id = departures.pop().id;
      Client& client = *slots_[id];
      if (!client.session->done()) client.session->abort_session();
    }
    // Retire finished sessions (content end, churn, or sim-time cap).
    for (auto it = active.begin(); it != active.end();) {
      if ((*it)->session->done()) {
        departures.erase(static_cast<std::uint32_t>((*it)->plan.id));
        finalize_client(**it, now);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    if (active.empty()) {
      if (next_arrival >= plans.size()) break;
      now = std::max(now, plans[next_arrival].arrival_s);
      admit_due();
      continue;
    }

    // Phase 1: registration barrier — every session's due flows join their
    // links before any horizon is computed.
    for (Client* client : active) client->session->begin_step();

    // Phase 2: global horizon.
    double t = std::numeric_limits<double>::infinity();
    for (Client* client : active) {
      t = std::min(t, client->session->next_event_time());
    }
    if (next_arrival < plans.size()) {
      t = std::min(t, plans[next_arrival].arrival_s);
    }
    if (!departures.empty()) t = std::min(t, departures.top().key);
    t = std::max(t, now);

    // Phase 3: integrate everyone through [now, t] *before* any events fire
    // — a completion inside integrate order would change link counts
    // mid-interval for sessions integrated later.
    for (Client* client : active) client->session->integrate_to(t);
    now = t;

    // Phase 4: event barrier, client-id order (deterministic).
    for (Client* client : active) client->session->process_events();
    ++result_.steps;

    // Phase 5: admissions exactly at t join before the next barrier.
    admit_due();
  }
  return now;
}

double FleetScheduler::run_event_heap(const std::vector<ClientPlan>& plans) {
  // The heap's "link" entities are carriers with completion registries: the
  // shared Links of a plain fleet, or one PathChannel per topology path.
  std::vector<Channel*> links;
  if (topology_.has_value()) {
    // Every channel with a completion registry, including the derived
    // cache-hit prefix channels above path_count() — flows routed onto them
    // must surface their completions like any other carrier.
    for (std::size_t p = 0; p < topology_->channel_count(); ++p) {
      links.push_back(topology_->path_channel(p).get());
    }
  } else {
    links.push_back(video_link_.link().get());
    if (audio_link_.has_value()) links.push_back(audio_link_->link().get());
  }

  EventHeap heap(static_cast<std::uint32_t>(plans.size()),
                 static_cast<std::uint32_t>(links.size()), &arena_);

  // Self-profiling (obs/profile.h): phase wall-clock only when requested —
  // a null PhaseStats* makes PhaseTimer clock-free — heap counters always.
  obs::EngineProfile& profile = result_.profile;
  profile.enabled = config_.profile;
  obs::PhaseStats* const drain_stats = config_.profile ? &profile.drain : nullptr;
  obs::PhaseStats* const register_stats =
      config_.profile ? &profile.register_phase : nullptr;
  obs::PhaseStats* const admit_stats = config_.profile ? &profile.admit : nullptr;
  // Per-drain-phase link re-keying over the *dirty* set: a topology records
  // the channels whose epochs moved since the last call (population changes
  // mark exactly the affected set), so only those are re-synced; plain
  // fleets just check their one or two links, where the epoch-lazy test
  // inside sync_link makes a clean link a couple of loads. Either way the
  // heap's link keys are exact after every call — the same invariant the
  // historical sync-all-links-after-every-event loop maintained, at a
  // fraction of the checks.
  Topology* const topo = topology_.has_value() ? &*topology_ : nullptr;
  if (topo != nullptr) topo->clear_dirty();
  const auto sync_dirty = [&] {
    if (topo != nullptr) {
      for (const std::uint32_t idx : topo->dirty_channels()) {
        heap.sync_link(idx, *links[idx]);
      }
      topo->clear_dirty();
    } else {
      for (std::size_t i = 0; i < links.size(); ++i) {
        heap.sync_link(static_cast<std::uint32_t>(i), *links[i]);
      }
    }
  };
  // A session is keyed on its own (link-independent) events plus its
  // planned departure; flow completions surface through the link keys.
  const auto schedule = [&](Client& client) {
    const double t = std::min(client.session->next_local_event_time(),
                              client.plan.leave_at_s);
    heap.schedule_session(static_cast<std::uint32_t>(client.plan.id), t);
  };

  double now = 0.0;
  std::size_t next_arrival = 0;
  const auto admit_due = [&] {
    obs::PhaseTimer timer(admit_stats);
    while (next_arrival < plans.size() && plans[next_arrival].arrival_s <= now) {
      Client& client = admit(plans[next_arrival]);
      ++next_arrival;
      if (client.session->done()) {
        // Born at (or past) its cap: retire immediately — the barrier
        // engine's retire scan does the same before ever stepping it.
        finalize_client(client, now);
        continue;
      }
      schedule(client);
    }
  };

  // Reusable drain scratch: sessions processed at this timestamp, plus the
  // batch of session entries popped in phase A. Steady-state drain work
  // allocates nothing — both vectors reach their high-water capacity early,
  // and even that growth comes from the shard arena, not the heap.
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> touched{
      ArenaAllocator<std::uint32_t>(&arena_)};
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> batch{
      ArenaAllocator<std::uint32_t>(&arena_)};
  admit_due();
  while (true) {
    const double t_event =
        heap.empty() ? std::numeric_limits<double>::infinity() : heap.top().t;
    const double t_arrival = next_arrival < plans.size()
                                 ? plans[next_arrival].arrival_s
                                 : std::numeric_limits<double>::infinity();
    if (!std::isfinite(t_event) && !std::isfinite(t_arrival)) break;
    if (t_arrival < t_event) {
      now = t_arrival;
      admit_due();
      continue;
    }

    // Drain every event at this timestamp, then run registrations. The
    // barrier engine fires all of a step's events before the *next* step's
    // begin_step registers flows, so flow removals at t must land before
    // additions at t here too (same intermediate counts, same link peaks).
    //
    // The drain is batched by timestamp (DESIGN.md §12): every entity due
    // at t is popped and processed in (key, id) pop order with ONE dirty
    // link re-sync per phase instead of one full sweep per event. This is
    // byte-identical to the per-event-sync loop because (a) session ids
    // sit below every link id, so all due sessions pop before any link
    // entry regardless of how link keys move at t, (b) session keys never
    // change during a drain (re-keying waits for the registration phase),
    // and (c) a mutation at t can never pull a completion below t —
    // service integrals are continuous, so a target above V(t) stays
    // above it no matter how the population changes at t.
    const double t = t_event;
    now = t;
    touched.clear();
    // Phase A pops at equal key come off the heap in ascending id order (the
    // (key, id) tie-break), so `touched` stays sorted and duplicate-free
    // until a link event fires; only phase B makes the sort below necessary.
    bool touched_unordered = false;
    int guard = 0;
    std::optional<obs::PhaseTimer> drain_timer(std::in_place, drain_stats);

    const auto process = [&](std::uint32_t id, bool is_link) {
      DMX_TRACE_INSTANT(obs::kCatEngine, obs::kEngineTrack, obs::kLanePlayback,
                        "pop", t,
                        obs::TraceArgs()
                            .kv("link", is_link ? 1 : 0)
                            .kv("client", static_cast<std::int64_t>(id)));
      Client& client = *slots_[id];
      StreamingSession& session = *client.session;
      session.integrate_to(t);
      session.process_events();
      if (!session.done() && client.plan.leave_at_s <= t) {
        session.abort_session();
      }
      if (session.done()) {
        heap.erase_session(id);
        finalize_client(client, t);
      } else {
        // Rescheduling waits for the registration phase below: a flow whose
        // RTT ends exactly at t would otherwise keep the key pinned at t.
        touched.push_back(id);
      }
      ++result_.steps;
    };

    // Phase A: every session with its own event at t. One batch pop is
    // exhaustive — processing a session cannot schedule another session at
    // t (keys re-key only at registration), so the due set is exactly what
    // the heap holds now.
    batch.clear();
    while (!heap.empty() && !heap.top().is_link && heap.top().t <= t) {
      batch.push_back(heap.top().index);
      heap.pop();
    }
    for (const std::uint32_t id : batch) process(id, false);
    sync_dirty();

    // Phase B: link completions at t, one at a time — firing one can
    // surface another (on the same link, or on a different link through a
    // population change), and the (key, id) pop order must decide what
    // fires next exactly as the per-event-sync loop did.
    while (!heap.empty() && heap.top().t <= t) {
      if (++guard > 10000000) {
        DMX_ERROR << "event-heap engine wedged at t=" << t << " — aborting drain";
        assert(false && "event drain did not converge");
        break;
      }
      const EventHeap::Event event = heap.top();
      // Only link entries can remain: phase A drained every due session and
      // session keys cannot move during the drain.
      assert(event.is_link && "session entry surfaced during link phase");
      // The link's earliest registered completion is due: route the event
      // to the owning session (token = 2*id + is_video). Firing it bumps
      // the link epoch, so sync_dirty() below re-keys or clears the entry.
      Channel& link = *links[event.index];
      if (!link.has_completions()) {
        heap.sync_link(static_cast<std::uint32_t>(event.index), link, true);
        continue;
      }
      process(link.earliest_completion_token() / 2u, true);
      touched_unordered = true;
      sync_dirty();
    }
    drain_timer.reset();

    // Registration phase at t, in client-id order (the barrier's phase 1):
    // flows whose RTT ended join their links, and every touched session
    // gets its next event key.
    std::optional<obs::PhaseTimer> register_timer(std::in_place, register_stats);
    if (touched_unordered) {
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    }
    for (const std::uint32_t id : touched) {
      Client& client = *slots_[id];
      if (!client.session) continue;  // finalized later in the same drain
      client.session->begin_step();
      schedule(client);
    }
    sync_dirty();
    register_timer.reset();

    // Admissions exactly at t join after the events at t, as in the barrier.
    admit_due();
  }
  profile.heap_pops = heap.stats().pops;
  profile.link_sync_checks = heap.stats().sync_checks;
  profile.link_sync_refreshes = heap.stats().sync_refreshes;
  return now;
}

FleetResult run_fleet(const Content& content, const ManifestView& view,
                      const BandwidthTrace& bottleneck, const FleetConfig& config) {
  if (config.threads != 1 && config.topology.has_value()) {
    // Multi-component topologies run their shards concurrently; the runner
    // falls back to the serial path when the topology is one component.
    return run_fleet_sharded(content, view, bottleneck, config);
  }
  FleetScheduler scheduler(content, view, bottleneck, config);
  return scheduler.run();
}

std::vector<FleetReplication> run_replications(const Content& content,
                                               const ManifestView& view,
                                               const BandwidthTrace& bottleneck,
                                               const FleetConfig& config,
                                               const ReplicationOptions& options) {
  const int count = std::max(1, options.replications);
  // Deterministic fan-out / ordered-merge (util/parallel.h): results come
  // back in replication order for every thread count.
  return fan_out_ordered(
      static_cast<std::size_t>(count), options.threads, [&](std::size_t r) {
        FleetReplication rep;
        rep.seed = config.seed + static_cast<std::uint64_t>(r) * options.seed_stride;
        FleetConfig seeded = config;
        seeded.seed = rep.seed;
        rep.result = run_fleet(content, view, bottleneck, seeded);
        rep.metrics = compute_fleet_metrics(rep.result);
        return rep;
      });
}

}  // namespace demuxabr::fleet
