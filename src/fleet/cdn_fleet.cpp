#include "fleet/cdn_fleet.h"

#include <cassert>
#include <utility>

#include "obs/telemetry.h"

namespace demuxabr::fleet {

CdnState::Node::Node(std::size_t link_index, const CacheSpec& cache)
    : link(link_index), edge(cache.capacity_bytes) {
  if (cache.has_regional()) {
    regional = std::make_unique<LruCache>(cache.regional_capacity_bytes);
  }
  stats.link = link_index;
}

CdnState::CdnState(const TopologySpec& spec, Topology& topology,
                   std::shared_ptr<const ObjectCatalog> catalog)
    : catalog_(std::move(catalog)) {
  assert(catalog_ != nullptr);
  std::vector<std::size_t> node_of_link(spec.links.size(), spec.links.size());
  for (std::size_t l = 0; l < spec.links.size(); ++l) {
    if (!spec.links[l].cache.has_value()) continue;
    node_of_link[l] = nodes_.size();
    nodes_.emplace_back(l, *spec.links[l].cache);
    nodes_.back().stats.link_name = spec.links[l].name;
  }
  for (std::size_t p = 0; p < topology.path_count(); ++p) {
    const std::optional<PathCacheRoute>& route = topology.cache_route(p);
    if (!route.has_value()) continue;
    routes_[topology.path_channel(p).get()] = {node_of_link[route->link],
                                               route->hit_channel};
  }
}

std::string CdnState::key_of(const DownloadRequest& request) const {
  if (request.muxed) {
    return chunk_object_key(request.track_id + "+" + request.audio_track_id,
                            request.chunk_index);
  }
  return chunk_object_key(request.track_id, request.chunk_index);
}

FlowRoute CdnState::admit(const DownloadRequest& request, Channel& origin_route,
                          double now) {
  const auto it = routes_.find(&origin_route);
  if (it == routes_.end()) return {};  // no cache on this path
  Node& node = nodes_[it->second.first];
  CdnStats& s = node.stats;
  const std::string key = key_of(request);
  const std::int64_t size = catalog_->size_of(key);
  if (size < 0) {
    // Not in the origin inventory (e.g. a muxed request against a demuxed
    // catalog): uncacheable, full path, no delivery owed.
    ++s.uncacheable;
    return {};
  }
  ++s.requests;
  if (node.edge.get(key)) {
    ++s.edge_hits;
    s.edge_hit_bytes += size;
    if (telemetry_ != nullptr) telemetry_->cdn_request(node.link, now, true);
    // Resident at the edge: the flow only spans the client→edge prefix.
    return {it->second.second, 0};
  }
  if (telemetry_ != nullptr) telemetry_->cdn_request(node.link, now, false);
  if (node.regional != nullptr && node.regional->get(key)) {
    // Regional tier sits by the origin: saves origin egress, not hops.
    ++s.regional_hits;
    s.regional_hit_bytes += size;
    return {nullptr, make_ticket(it->second.first, kFillEdge)};
  }
  ++s.origin_fetches;
  s.origin_bytes += size;
  return {nullptr, make_ticket(it->second.first,
                               node.regional != nullptr ? kFillBoth : kFillEdge)};
}

void CdnState::delivered(const DownloadRequest& request, std::uint64_t ticket,
                         double /*now*/) {
  if (ticket == 0) return;
  const auto action = static_cast<Action>(ticket & 0x3u);
  Node& node = nodes_[static_cast<std::size_t>(ticket >> 2) - 1];
  const std::string key = key_of(request);
  const std::int64_t size = catalog_->size_of(key);
  assert(size >= 0 && "ticketed delivery of an uncatalogued object");
  if (action == kFillBoth) {
    assert(node.regional != nullptr);
    node.regional->put(key, size);
  }
  node.edge.put(key, size);
}

std::vector<CdnStats> CdnState::stats() const {
  std::vector<CdnStats> out;
  out.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    CdnStats s = node.stats;
    s.edge_evictions = node.edge.eviction_count();
    s.regional_evictions =
        node.regional != nullptr ? node.regional->eviction_count() : 0;
    s.edge_used_bytes = node.edge.used_bytes();
    s.edge_objects = node.edge.object_count();
    out.push_back(std::move(s));
  }
  return out;
}

std::shared_ptr<const ObjectCatalog> make_fleet_catalog(const Content& content,
                                                        StorageMode storage) {
  return std::make_shared<const ObjectCatalog>(storage == StorageMode::kMuxed
                                                   ? build_muxed_catalog(content)
                                                   : build_demuxed_catalog(content));
}

}  // namespace demuxabr::fleet
