// EventHeap: the fleet engine's event queue. An indexed min-heap over two
// kinds of entities keyed by absolute event time:
//
//   * sessions — keyed on min(next_local_event_time, planned leave time);
//     refreshed whenever the session is processed;
//   * shared links — every carrier with a completion registry: the shared
//     Links of a plain fleet, or one entity per topology *channel* (spec
//     paths plus the derived cache-hit prefix channels of cache-aware
//     fleets, Topology::channel_count). Keyed on the carrier's earliest
//     registered flow completion, refreshed *lazily*: the key is recomputed
//     only when the link's flow-count epoch moved since the last sync. A
//     completion
//     target is a virtual-service integral value, invariant under
//     population and capacity changes, so one O(log F) registry lookup per
//     link replaces re-keying every riding session when a flow joins or
//     leaves — the difference between O(log N) and O(N) per event.
//
// Ties pop by entity id; link ids sit above all session ids, so a session's
// own events at time t fire before completions surface at t — mirroring the
// barrier engine's phase order.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "net/channel.h"
#include "util/arena.h"
#include "util/indexed_min_heap.h"

namespace demuxabr::fleet {

class EventHeap {
 public:
  /// Entity id layout: sessions occupy [0, session_count), link `i` maps to
  /// session_count + i. `arena` (optional, must outlive the heap) backs the
  /// heap's storage — the scheduler passes its per-shard arena so engine
  /// bookkeeping never touches the global heap after construction.
  EventHeap(std::uint32_t session_count, std::uint32_t link_count,
            MonotonicArena* arena = nullptr);

  struct Event {
    bool is_link = false;
    std::uint32_t index = 0;  ///< session id, or link index
    double t = 0.0;
  };

  /// Insert or re-key a session's next event time.
  void schedule_session(std::uint32_t id, double t) { heap_.update(id, t); }
  /// Drop a retired session.
  void erase_session(std::uint32_t id) { heap_.erase(id); }

  /// Refresh link `link_index`'s key iff its epoch moved since the last
  /// sync (or unconditionally with `force`). A link with no registered
  /// completions leaves the heap.
  void sync_link(std::uint32_t link_index, const Channel& link, bool force = false);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] Event top() const {
    const IndexedMinHeap::Entry entry = heap_.top();
    Event event;
    event.is_link = entry.id >= link_base_;
    event.index = event.is_link ? entry.id - link_base_ : entry.id;
    event.t = entry.key;
    return event;
  }
  void pop() {
    heap_.pop();
    ++stats_.pops;
  }

  /// Structural work counters (plain integer increments, always collected):
  /// pops, plus sync_link calls vs. the subset that actually re-keyed — the
  /// epoch-lazy optimisation's hit rate.
  struct Stats {
    std::uint64_t pops = 0;
    std::uint64_t sync_checks = 0;
    std::uint64_t sync_refreshes = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  BasicIndexedMinHeap<ArenaAllocator<HeapEntry>> heap_;
  Stats stats_;
  std::uint32_t link_base_;
  /// Last-synced Link::epoch() per link; starts at a sentinel no real epoch
  /// takes so the first sync always refreshes.
  std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> link_epochs_;
};

}  // namespace demuxabr::fleet
