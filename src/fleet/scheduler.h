// FleetScheduler: the multi-client discrete-event engine. Interleaves N
// StreamingSessions against shared bottleneck Links so processor sharing
// spans *sessions*, not just one client's audio/video flows — the workload
// class where the paper's §3.3 mis-estimation and §3.4 buffer-imbalance
// pathologies compound across a population.
//
// Scheduling contract (DESIGN.md "Fleet simulation"): every global step runs
// four phases across all active sessions, in client-id order —
//   1. begin_step()        flows past their RTT register on shared links
//   2. next_event_time()   global horizon = min over sessions, arrivals, churn
//   3. integrate_to(t*)    every session advances through [now, t*] with the
//                          flow counts frozen during the interval
//   4. process_events()    completions / ticks / polling fire, mutating link
//                          counts only at the barrier
// The phase barriers are what make cross-session sharing exact: no session
// sees a link count that changed mid-interval. Single-threaded and
// deterministic; replications fan out across a ThreadPool.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/shared_link.h"
#include "manifest/view.h"
#include "media/content.h"
#include "net/bandwidth_trace.h"
#include "sim/session.h"

namespace demuxabr::fleet {

class FleetScheduler {
 public:
  /// All clients stream `content` (which must outlive run()) through `view`.
  /// `bottleneck` carries every client's audio and video; pass `audio_trace`
  /// to put all audio flows on their own shared pipe instead (the §4.1
  /// different-servers scenario at fleet scale).
  FleetScheduler(const Content& content, ManifestView view,
                 BandwidthTrace bottleneck, FleetConfig config,
                 std::optional<BandwidthTrace> audio_trace = std::nullopt);

  /// Run the whole population to completion (or churn/cap). Call once.
  FleetResult run();

 private:
  struct Client {
    ClientPlan plan;
    std::unique_ptr<PlayerAdapter> player;
    std::unique_ptr<StreamingSession> session;
  };

  void admit(const ClientPlan& plan);

  const Content& content_;
  ManifestView view_;
  FleetConfig config_;
  SharedLink video_link_;
  std::optional<SharedLink> audio_link_;
  std::vector<Client> active_;  ///< client-id order within every barrier
  FleetResult result_;
};

/// Convenience one-call runner.
FleetResult run_fleet(const Content& content, const ManifestView& view,
                      const BandwidthTrace& bottleneck, const FleetConfig& config);

// --- Independent replications (seed sweep) on the ThreadPool. ---

struct ReplicationOptions {
  int replications = 1;
  /// 0 = ThreadPool::default_thread_count(); 1 = serial on the calling
  /// thread. Any thread count yields identical per-replication results.
  int threads = 0;
  /// Replication r runs with seed = config.seed + r * seed_stride.
  std::uint64_t seed_stride = 1;
};

struct FleetReplication {
  std::uint64_t seed = 0;
  FleetResult result;
  FleetMetrics metrics;
};

/// Run `options.replications` independent fleets (same config, shifted
/// seeds), fanned across a ThreadPool. Results come back in replication
/// order and are byte-identical for every thread count.
std::vector<FleetReplication> run_replications(const Content& content,
                                               const ManifestView& view,
                                               const BandwidthTrace& bottleneck,
                                               const FleetConfig& config,
                                               const ReplicationOptions& options);

}  // namespace demuxabr::fleet
