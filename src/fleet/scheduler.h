// FleetScheduler: the multi-client discrete-event engine. Interleaves N
// StreamingSessions against shared bottleneck Links so processor sharing
// spans *sessions*, not just one client's audio/video flows — the workload
// class where the paper's §3.3 mis-estimation and §3.4 buffer-imbalance
// pathologies compound across a population.
//
// Two engines produce bit-identical results (DESIGN.md §7 "Engine modes"):
//
//  * kBarrier (reference): every global step runs phase barriers across all
//    active sessions in client-id order — churn/retire, begin_step
//    (registrations), horizon = min over per-session next_event_time,
//    integrate_to(t*), process_events, admissions. O(N) per step.
//
//  * kEventHeap (default): an indexed min-heap keys each session on its own
//    next *local* event time and each shared link on its earliest
//    registered completion (lazily re-keyed via the link's flow-count
//    epoch). Only the sessions with events at time t are touched; everyone
//    else is advanced implicitly through the links' virtual-time service
//    integrals. O(log N) per event.
//
// Identity holds because sessions derive all state from anchored values
// that only change at their own events (sim/session.h), so barrier visits
// at foreign event times are numerically invisible. Single-threaded and
// deterministic; replications fan out across a ThreadPool.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fleet/cdn_fleet.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/shared_link.h"
#include "fleet/topology.h"
#include "manifest/view.h"
#include "media/content.h"
#include "net/bandwidth_trace.h"
#include "sim/session.h"
#include "util/arena.h"

namespace demuxabr::fleet {

class FleetScheduler {
 public:
  /// All clients stream `content` (which must outlive run()) through `view`.
  /// `bottleneck` carries every client's audio and video; pass `audio_trace`
  /// to put all audio flows on their own shared pipe instead (the §4.1
  /// different-servers scenario at fleet scale). When
  /// `config.topology` is set, both traces are ignored and every client
  /// rides its assigned multi-link path instead (fleet/topology.h).
  FleetScheduler(const Content& content, ManifestView view,
                 BandwidthTrace bottleneck, FleetConfig config,
                 std::optional<BandwidthTrace> audio_trace = std::nullopt);

  /// Run the whole population to completion (or churn/cap). Call once.
  FleetResult run();

  // --- Two-phase API for the shard runner (fleet/shard.h). ---

  /// Run the engine over pre-built plans (arrival-sorted, ids dense in
  /// [0, plans.size()) — the shard runner renumbers) WITHOUT closing the
  /// link books. Call once; follow with close_links().
  FleetResult run_engine(const std::vector<ClientPlan>& plans);

  /// Advance every link/path integral to `end_time` (idle tails included)
  /// and write the closing stats into `result`. The shard runner passes the
  /// *global* max end time so per-link stats match the whole-topology
  /// serial run byte for byte; run() passes the run's own end time.
  void close_links(FleetResult& result, double end_time);

  /// run_engine + close_links at the run's own end time, over caller-built
  /// plans.
  FleetResult run_plans(const std::vector<ClientPlan>& plans);

 private:
  struct Client {
    ClientPlan plan;
    std::unique_ptr<PlayerAdapter> player;
    std::unique_ptr<StreamingSession> session;
    int video_path = -1;  ///< topology path indices (see ClientResult)
    int audio_path = -1;
  };

  /// Build and start client `plan`'s session; returns the slot (owned by
  /// slots_, indexed by client id).
  Client& admit(const ClientPlan& plan);
  /// Collect the client's result and release its session/player.
  void finalize_client(Client& client, double now);

  double run_barrier(const std::vector<ClientPlan>& plans);
  double run_event_heap(const std::vector<ClientPlan>& plans);

  const Content& content_;
  ManifestView view_;
  FleetConfig config_;
  /// Per-shard monotonic arena (DESIGN.md §12) backing run-lifetime engine
  /// state: every channel's completion registry, the event heap, drain
  /// scratch, and session pending-delivery queues. Declared before the
  /// links/topology that allocate from it so it outlives them (members
  /// destroy in reverse order). Single-threaded: each shard runs its own
  /// scheduler, hence its own arena.
  MonotonicArena arena_;
  SharedLink video_link_;  ///< unused when topology_ is set
  std::optional<SharedLink> audio_link_;
  std::optional<Topology> topology_;
  /// Cache-aware runs only: the origin catalog (possibly shared read-only
  /// across shards) and this run's cache plane / flow router.
  std::shared_ptr<const ObjectCatalog> catalog_;
  std::unique_ptr<CdnState> cdn_;
  /// Time-binned telemetry accumulator (obs/telemetry.h), built only when
  /// config_.telemetry.enabled. Declared before slots_ so the sessions that
  /// hold raw pointers into it are destroyed first.
  std::unique_ptr<obs::TimelineShard> telemetry_;
  std::vector<std::unique_ptr<Client>> slots_;  ///< by client id
  FleetResult result_;
  bool streaming_ = false;  ///< streaming-metrics mode active for this run
};

/// Convenience one-call runner. When `config.threads` != 1 and the topology
/// splits into multiple connected components, dispatches to the parallel
/// shard runner (fleet/shard.h) — results are byte-identical either way.
FleetResult run_fleet(const Content& content, const ManifestView& view,
                      const BandwidthTrace& bottleneck, const FleetConfig& config);

// --- Independent replications (seed sweep) on the ThreadPool. ---

struct ReplicationOptions {
  int replications = 1;
  /// 0 = ThreadPool::default_thread_count(); 1 = serial on the calling
  /// thread. Any thread count yields identical per-replication results.
  int threads = 0;
  /// Replication r runs with seed = config.seed + r * seed_stride.
  std::uint64_t seed_stride = 1;
};

struct FleetReplication {
  std::uint64_t seed = 0;
  FleetResult result;
  FleetMetrics metrics;
};

/// Run `options.replications` independent fleets (same config, shifted
/// seeds), fanned across a ThreadPool. Results come back in replication
/// order and are byte-identical for every thread count.
std::vector<FleetReplication> run_replications(const Content& content,
                                               const ManifestView& view,
                                               const BandwidthTrace& bottleneck,
                                               const FleetConfig& config,
                                               const ReplicationOptions& options);

}  // namespace demuxabr::fleet
