#include "fleet/event_heap.h"

#include <limits>

namespace demuxabr::fleet {
namespace {
constexpr std::uint64_t kNeverSynced = std::numeric_limits<std::uint64_t>::max();
}  // namespace

EventHeap::EventHeap(std::uint32_t session_count, std::uint32_t link_count,
                     MonotonicArena* arena)
    : heap_(ArenaAllocator<HeapEntry>(arena)),
      link_base_(session_count),
      link_epochs_(link_count, kNeverSynced, ArenaAllocator<std::uint64_t>(arena)) {
  heap_.reserve(session_count + link_count);
}

void EventHeap::sync_link(std::uint32_t link_index, const Channel& link, bool force) {
  ++stats_.sync_checks;
  if (!force && link_epochs_[link_index] == link.epoch()) return;
  ++stats_.sync_refreshes;
  link_epochs_[link_index] = link.epoch();
  const std::uint32_t id = link_base_ + link_index;
  const double t = link.earliest_completion_time();
  if (std::isfinite(t)) {
    heap_.update(id, t);
  } else {
    heap_.erase(id);
  }
}

}  // namespace demuxabr::fleet
