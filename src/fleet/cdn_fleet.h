// CDN edge caches as first-class topology nodes (ROADMAP "per-CDN fleets").
//
// A TopologySpec link carrying a CacheSpec becomes a CDN node: an LRU edge
// cache (plus an optional regional tier with CdnChain semantics) backed by
// an ObjectCatalog built from the fleet's MediaContent in either
// StorageMode. CdnState implements the session-facing FlowRouter hook:
//
//   * admit — when a flow's RTT elapses, look the chunk's object key up in
//     the cache co-located with the flow's path. A resident object (edge
//     hit) rides the derived client→edge prefix channel; anything else
//     rides the full path to the origin. A regional hit saves origin
//     egress (stats) but still traverses the full path — the regional tier
//     sits next to the origin, not next to the client.
//   * delivered — at flow completion (deferred to the completing session's
//     next begin_step) the object fills the cache tiers, so cache warmth
//     dynamically changes which links later chunks traverse.
//
// Determinism: both hooks only ever run inside begin_step, which both fleet
// engines execute in ascending client id per timestamp with completions
// before registrations (sim/flow_router.h). All counters are integers. A
// cached link and every path through it share one connected component
// (shard.cpp copies LinkSpec wholesale), so caches are shard-local and the
// sharded merge stays byte-identical at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/topology.h"
#include "httpsim/catalog.h"
#include "httpsim/lru_cache.h"
#include "sim/flow_router.h"

namespace demuxabr::fleet {

/// Closing stats of one CDN node (cache-bearing link) of a fleet run. All
/// counts are integers, so the fingerprint lines they feed are trivially
/// byte-identical across engines and thread counts.
struct CdnStats {
  std::string link_name;
  std::size_t link = 0;  ///< topology link index (global after shard merge)

  std::int64_t requests = 0;        ///< cacheable requests routed past this node
  std::int64_t edge_hits = 0;       ///< served from the edge tier (short route)
  std::int64_t regional_hits = 0;   ///< served from the regional tier (full route)
  std::int64_t origin_fetches = 0;  ///< cold: pulled from the origin
  std::int64_t uncacheable = 0;     ///< keys absent from the catalog (not counted above)

  std::int64_t edge_hit_bytes = 0;
  std::int64_t regional_hit_bytes = 0;
  std::int64_t origin_bytes = 0;  ///< origin egress this node caused

  std::size_t edge_evictions = 0;
  std::size_t regional_evictions = 0;
  std::int64_t edge_used_bytes = 0;  ///< resident bytes at close
  std::size_t edge_objects = 0;      ///< resident objects at close

  [[nodiscard]] double hit_ratio() const {
    return requests > 0
               ? static_cast<double>(edge_hits) / static_cast<double>(requests)
               : 0.0;
  }
  [[nodiscard]] double byte_hit_ratio() const {
    const std::int64_t total = edge_hit_bytes + regional_hit_bytes + origin_bytes;
    return total > 0 ? static_cast<double>(edge_hit_bytes) / static_cast<double>(total)
                     : 0.0;
  }
};

/// The shard-local cache plane of one fleet run: owns every CDN node's LRU
/// tiers and routes flows per request. Wire into each session's Network as
/// its FlowRouter (FleetScheduler does this); must outlive the sessions.
class CdnState final : public FlowRouter {
 public:
  /// `spec` names which links carry caches; `topology` (built from the same
  /// spec) provides each path's cache route; `catalog` is the shared
  /// read-only origin inventory. Both referents must outlive this object.
  CdnState(const TopologySpec& spec, Topology& topology,
           std::shared_ptr<const ObjectCatalog> catalog);

  FlowRoute admit(const DownloadRequest& request, Channel& origin_route,
                  double now) override;
  void delivered(const DownloadRequest& request, std::uint64_t ticket,
                 double now) override;

  /// Closing per-node snapshot, ascending link index (folds in eviction /
  /// residency counters from the LRU tiers).
  [[nodiscard]] std::vector<CdnStats> stats() const;

  /// Wire the time-binned telemetry sink (obs/telemetry.h): every cacheable
  /// admission is reported as a per-bin hit/miss on the node's link. Null
  /// (default) costs one branch per admission.
  void set_telemetry(obs::TimelineShard* telemetry) { telemetry_ = telemetry; }

 private:
  /// delivered() action encoded in the admit() ticket.
  enum Action : std::uint64_t { kNone = 0, kFillEdge = 1, kFillBoth = 2 };

  struct Node {
    std::size_t link = 0;
    LruCache edge;
    std::unique_ptr<LruCache> regional;  ///< null = single-tier node
    CdnStats stats;

    Node(std::size_t link_index, const CacheSpec& cache);
  };

  [[nodiscard]] static std::uint64_t make_ticket(std::size_t node, Action action) {
    return ((static_cast<std::uint64_t>(node) + 1) << 2) | action;
  }
  [[nodiscard]] std::string key_of(const DownloadRequest& request) const;

  std::shared_ptr<const ObjectCatalog> catalog_;
  obs::TimelineShard* telemetry_ = nullptr;
  std::vector<Node> nodes_;  ///< ascending link index
  /// Default carrier (spec-path channel) → (node index, hit channel).
  /// Pointer-keyed lookup only — never iterated, so determinism holds.
  std::unordered_map<const Channel*, std::pair<std::size_t, Channel*>> routes_;
};

/// Build the origin catalog for `content` in the given storage mode.
[[nodiscard]] std::shared_ptr<const ObjectCatalog> make_fleet_catalog(
    const Content& content, StorageMode storage);

}  // namespace demuxabr::fleet
