// Parallel shard execution (DESIGN.md §10): a TopologySpec whose link graph
// splits into multiple connected components describes causally independent
// sub-fleets — no flow on one component can ever change a rate, epoch or
// completion time on another. partition_fleet() finds the components (union-
// find over links, with each client's video and audio paths coupled into
// the same component, since one session spans both), and run_fleet_sharded()
// runs one event-heap engine per component concurrently on the work-
// stealing ThreadPool, merging results deterministically in shard-id order
// (util/parallel.h fan_out_ordered — the run_replications recipe applied
// *within* one fleet).
//
// Determinism argument: each shard simulates exactly the event sequence the
// whole-topology serial engine would execute restricted to that component.
// Client ids renumber monotonically (rank of global id within the shard),
// so every same-time tie-break compares the same way; link books advance
// only at their own component's population changes (affected sets never
// cross components); and every shard's links close at the *global* max end
// time. The merged fingerprint is therefore byte-identical to the
// threads=1 whole-topology run for any thread count
// (tests/test_fleet_shard.cpp pins {1, 2, 8}).
//
// Caveat: per-session trace tracks are keyed by shard-local client ids, so
// obs traces of a sharded run overlay sessions from different shards on the
// same track (metrics counters are sharded atomics and stay exact). Trace a
// single shard, or run threads=1, when per-session traces matter.
#pragma once

#include <cstddef>
#include <vector>

#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/topology.h"
#include "manifest/view.h"
#include "media/content.h"
#include "net/bandwidth_trace.h"

namespace demuxabr::fleet {

/// One connected component of the topology plus its slice of the
/// population, renumbered to local dense ids.
struct FleetShard {
  /// Sub-topology: links/paths in ascending global-index order, hop indices
  /// remapped, explicit per-local-client assignment vectors, trace tracks
  /// pinned to the global link ids.
  TopologySpec spec;
  std::vector<std::size_t> link_ids;  ///< local link index -> global
  std::vector<std::size_t> path_ids;  ///< local path index -> global
  /// This shard's clients, arrival-sorted, ids rewritten to local dense
  /// [0, plans.size()) — by rank of global id, so id-order tie-breaks are
  /// preserved.
  std::vector<ClientPlan> plans;
  std::vector<int> client_ids;  ///< local client id -> global client id
};

/// Partition of a fleet into causally independent shards, ordered by each
/// component's smallest global link index.
struct ShardPartition {
  std::vector<FleetShard> shards;
};

/// Split `spec` into connected components and distribute `plans` (global
/// dense ids) onto them. A client lands in the component of its video path;
/// its audio path is guaranteed co-located (coupled during the union).
ShardPartition partition_fleet(const TopologySpec& spec,
                               const std::vector<ClientPlan>& plans);

/// Run `config` (which must carry a topology) as parallel shards on
/// `config.threads` workers (0 = hardware default) and merge. Byte-
/// identical to the serial whole-topology run; falls back to it when the
/// topology is a single component. `bottleneck` is unused (topology runs
/// ignore it) but keeps the run_fleet signature.
FleetResult run_fleet_sharded(const Content& content, const ManifestView& view,
                              const BandwidthTrace& bottleneck,
                              const FleetConfig& config);

}  // namespace demuxabr::fleet
