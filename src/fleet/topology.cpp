#include "fleet/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/strings.h"

namespace demuxabr::fleet {
namespace {

/// Hard cap on path depth so the pure walks can use stack buffers for the
/// hoisted per-hop inverse populations. validate() enforces it.
constexpr std::size_t kMaxHops = 16;

std::vector<std::uint32_t> sorted_unique(std::vector<std::uint32_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Append `rows` as one CSR block: values into `csr`, the new row boundary
/// into `offsets` (which must already hold the leading 0).
void push_csr_row(std::vector<std::uint32_t>& csr, std::vector<std::uint32_t>& offsets,
                  const std::vector<std::uint32_t>& row) {
  csr.insert(csr.end(), row.begin(), row.end());
  offsets.push_back(static_cast<std::uint32_t>(csr.size()));
}

}  // namespace

// --- TopologySpec ---

std::size_t TopologySpec::add_link(std::string name, BandwidthTrace trace) {
  links.push_back({std::move(name), std::move(trace)});
  return links.size() - 1;
}

std::size_t TopologySpec::add_path(std::string name, std::vector<std::size_t> hops) {
  paths.push_back({std::move(name), std::move(hops)});
  return paths.size() - 1;
}

TopologySpec TopologySpec::single(BandwidthTrace trace, std::string name) {
  TopologySpec spec;
  const std::size_t link = spec.add_link(std::move(name), std::move(trace));
  spec.add_path("path", {link});
  return spec;
}

TopologySpec TopologySpec::sharded(int edge_count, const BandwidthTrace& access,
                                   const BandwidthTrace& edge,
                                   const BandwidthTrace& core) {
  TopologySpec spec;
  const std::size_t core_link = spec.add_link("core", core);
  for (int e = 0; e < edge_count; ++e) {
    const std::size_t access_link = spec.add_link(format("access-%d", e), access);
    const std::size_t edge_link = spec.add_link(format("edge-%d", e), edge);
    spec.add_path(format("shard-%d", e), {access_link, edge_link, core_link});
  }
  return spec;
}

std::vector<std::size_t> TopologySpec::block_assignment(std::size_t path_count,
                                                        std::size_t clients_per_path) {
  std::vector<std::size_t> assignment;
  assignment.reserve(path_count * clients_per_path);
  for (std::size_t p = 0; p < path_count; ++p) {
    for (std::size_t c = 0; c < clients_per_path; ++c) assignment.push_back(p);
  }
  return assignment;
}

std::string TopologySpec::validate() const {
  if (links.empty()) return "topology has no links";
  if (paths.empty()) return "topology has no paths";
  for (std::size_t l = 0; l < links.size(); ++l) {
    if (links[l].name.empty()) return format("link %zu is unnamed", l);
  }
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const PathSpec& path = paths[p];
    if (path.hops.empty()) return format("path %zu has no hops", p);
    if (path.hops.size() > kMaxHops) {
      return format("path %zu has %zu hops (max %zu)", p, path.hops.size(), kMaxHops);
    }
    std::vector<std::size_t> seen = path.hops;
    std::sort(seen.begin(), seen.end());
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] >= links.size()) {
        return format("path %zu references link %zu (only %zu links)", p, seen[i],
                      links.size());
      }
      if (i > 0 && seen[i] == seen[i - 1]) {
        return format("path %zu traverses link %zu twice", p, seen[i]);
      }
    }
  }
  for (std::size_t p = 0; p < paths.size(); ++p) {
    std::size_t cached_hops = 0;
    for (const std::size_t hop : paths[p].hops) {
      if (links[hop].cache.has_value()) ++cached_hops;
    }
    if (cached_hops > 1) {
      return format("path %zu traverses %zu cached links (max 1)", p, cached_hops);
    }
  }
  for (const std::size_t p : video_assignment) {
    if (p >= paths.size()) return format("video assignment references path %zu", p);
  }
  for (const std::size_t p : audio_assignment) {
    if (p >= paths.size()) return format("audio assignment references path %zu", p);
  }
  return "";
}

// --- PathChannel ---

double PathChannel::add_flow(double now) {
  topo_->population_change(index_, +1, now);
  return service_kbit_;
}

void PathChannel::remove_flow(double now) {
  topo_->population_change(index_, -1, now);
}

double PathChannel::service_at(double t) const {
  if (t <= clock_s_) return service_kbit_;
  if (active_flows_ <= 0) return service_kbit_;  // idle: nobody is served
  const std::vector<Topology::LinkNode>& links = topo_->links_;
  const std::uint32_t* const hops = topo_->hops_of(index_);
  const std::size_t hop_count = topo_->hop_count_of(index_);
  double inv[kMaxHops];
  for (std::size_t i = 0; i < hop_count; ++i) {
    // Every hop carries at least this path's flows, so the count is >= 1.
    inv[i] = 1.0 / static_cast<double>(links[hops[i]].active_flows);
  }
  double v = service_kbit_;
  double at = clock_s_;
  while (at < t) {
    double boundary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < hop_count; ++i) {
      boundary = std::min(boundary, links[hops[i]].trace.next_change_after(at));
    }
    const double seg_end = std::min(boundary, t);
    const double dt = seg_end - at;
    if (dt <= 0.0) break;
    // Binding hop: smallest fair share; ties keep the earliest hop.
    std::size_t b = 0;
    double best = links[hops[0]].trace.rate_kbps(at) * inv[0];
    for (std::size_t i = 1; i < hop_count; ++i) {
      const double share = links[hops[i]].trace.rate_kbps(at) * inv[i];
      if (share < best) {
        best = share;
        b = i;
      }
    }
    v += links[hops[b]].trace.rate_kbps(at) * dt * inv[b];
    at = seg_end;
  }
  return v;
}

double PathChannel::time_when_service_reaches(double v_target) const {
  if (v_target <= service_kbit_) return clock_s_;
  if (active_flows_ <= 0) return std::numeric_limits<double>::infinity();
  const std::vector<Topology::LinkNode>& links = topo_->links_;
  const std::uint32_t* const hops = topo_->hops_of(index_);
  const std::size_t hop_count = topo_->hop_count_of(index_);
  double inv[kMaxHops];
  for (std::size_t i = 0; i < hop_count; ++i) {
    inv[i] = 1.0 / static_cast<double>(links[hops[i]].active_flows);
  }
  double v = service_kbit_;
  double at = clock_s_;
  // Walk forward one capacity segment at a time, as net/link.h does; the
  // iteration cap guards against a pathological all-zero tail.
  for (int guard = 0; guard < 1000000; ++guard) {
    double boundary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < hop_count; ++i) {
      boundary = std::min(boundary, links[hops[i]].trace.next_change_after(at));
    }
    double per_flow_kbps = links[hops[0]].trace.rate_kbps(at) * inv[0];
    for (std::size_t i = 1; i < hop_count; ++i) {
      const double share = links[hops[i]].trace.rate_kbps(at) * inv[i];
      if (share < per_flow_kbps) per_flow_kbps = share;
    }
    if (per_flow_kbps > 0.0) {
      const double t_hit = at + (v_target - v) / per_flow_kbps;
      if (t_hit <= boundary) return t_hit;
      if (!std::isfinite(boundary)) return t_hit;
      v += per_flow_kbps * (boundary - at);
    } else if (!std::isfinite(boundary)) {
      return std::numeric_limits<double>::infinity();
    }
    at = boundary;
  }
  return std::numeric_limits<double>::infinity();
}

double PathChannel::capacity_kbps(double t) const {
  const std::vector<Topology::LinkNode>& links = topo_->links_;
  const std::uint32_t* const hops = topo_->hops_of(index_);
  const std::size_t hop_count = topo_->hop_count_of(index_);
  double cap = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < hop_count; ++i) {
    cap = std::min(cap, links[hops[i]].trace.rate_kbps(t));
  }
  return cap;
}

// --- Topology ---

Topology::Topology(TopologySpec spec, MonotonicArena* arena) {
  const std::string problem = spec.validate();
  assert(problem.empty() && "TopologySpec::validate failed");
  if (!problem.empty()) {
    DMX_ERROR << "invalid topology (" << problem << ") — behaviour is undefined";
  }
  video_assignment_ = std::move(spec.video_assignment);
  audio_assignment_ = std::move(spec.audio_assignment);

  links_.reserve(spec.links.size());
  for (std::size_t l = 0; l < spec.links.size(); ++l) {
    LinkNode node;
    node.name = std::move(spec.links[l].name);
    node.trace = std::move(spec.links[l].trace);
    node.trace_track = spec.links[l].trace_track != 0
                           ? spec.links[l].trace_track
                           : obs::kLinkTrackBase + static_cast<std::uint32_t>(l);
    links_.push_back(std::move(node));
  }

  spec_path_count_ = spec.paths.size();
  for (const LinkSpec& link : spec.links) has_caches_ |= link.cache.has_value();

  // Channel hop lists, built nested first and flattened below. Channel
  // count is fixed up front (spec paths + derived hit channels) so paths_
  // never reallocates once sessions hold pointers into it.
  std::vector<std::vector<std::uint32_t>> channel_hops;
  std::vector<std::string> channel_names;
  channel_hops.reserve(spec.paths.size());
  for (std::size_t p = 0; p < spec.paths.size(); ++p) {
    std::vector<std::uint32_t> hops;
    hops.reserve(spec.paths[p].hops.size());
    for (const std::size_t hop : spec.paths[p].hops) {
      hops.push_back(static_cast<std::uint32_t>(hop));
    }
    channel_hops.push_back(std::move(hops));
    channel_names.push_back(std::move(spec.paths[p].name));
  }

  // Derived hit channels: for every spec path with a cached hop, the route a
  // cache hit rides — the hop prefix ending at the cached link. When the
  // cached link is the last hop the full path already IS that route, so the
  // hit reuses its channel (which also keeps a cached single-link topology
  // bit-identical to the plain fleet: routing can never diverge there).
  // Derived channels are full topology citizens — they join their links'
  // path lists, affected sets and rel spans below, so populations riding
  // them shape every fair share exactly like spec-path populations.
  //
  // (link index, hit channel index) per cached spec path; resolved into
  // cache_routes_ once paths_ is fully built and pointers are stable.
  std::vector<std::optional<std::pair<std::size_t, std::size_t>>> cache_hits(
      spec_path_count_);
  if (has_caches_) {
    for (std::size_t p = 0; p < spec_path_count_; ++p) {
      // Index, don't hold a reference: appending a derived channel can
      // reallocate channel_hops.
      for (std::size_t i = 0; i < channel_hops[p].size(); ++i) {
        const std::uint32_t cached_hop = channel_hops[p][i];
        if (!spec.links[cached_hop].cache.has_value()) continue;
        if (i + 1 == channel_hops[p].size()) {
          cache_hits[p] = {cached_hop, p};
        } else {
          const std::size_t index = channel_hops.size();
          std::vector<std::uint32_t> prefix(
              channel_hops[p].begin(),
              channel_hops[p].begin() + static_cast<std::ptrdiff_t>(i + 1));
          channel_hops.push_back(std::move(prefix));
          channel_names.push_back(channel_names[p] + ":hit");
          cache_hits[p] = {cached_hop, index};
        }
        break;  // validate(): at most one cached hop per path
      }
    }
  }

  const std::size_t channel_count = channel_hops.size();

  // Per-link rider sets, channel-insertion order (spec paths first, then
  // derived channels — the order the nested layout historically built).
  std::vector<std::vector<std::uint32_t>> link_paths(links_.size());
  for (std::size_t p = 0; p < channel_count; ++p) {
    for (const std::uint32_t hop : channel_hops[p]) {
      link_paths[hop].push_back(static_cast<std::uint32_t>(p));
    }
  }

  // Flatten everything into the CSR arrays.
  hop_offsets_.assign(1, 0);
  for (std::size_t p = 0; p < channel_count; ++p) {
    push_csr_row(hop_csr_, hop_offsets_, channel_hops[p]);
  }
  binding_csr_.assign(hop_csr_.size(), 0.0);

  link_paths_offsets_.assign(1, 0);
  rel_offsets_.assign(1, 0);
  for (std::size_t l = 0; l < links_.size(); ++l) {
    LinkNode& node = links_[l];
    node.saturating = true;
    std::vector<std::uint32_t> rel;
    for (const std::uint32_t q : link_paths[l]) {
      if (channel_hops[q].size() > 1) node.saturating = false;
      rel.insert(rel.end(), channel_hops[q].begin(), channel_hops[q].end());
    }
    push_csr_row(link_paths_csr_, link_paths_offsets_, link_paths[l]);
    push_csr_row(rel_csr_, rel_offsets_, sorted_unique(std::move(rel)));
  }

  aff_paths_offsets_.assign(1, 0);
  aff_links_offsets_.assign(1, 0);
  for (std::size_t p = 0; p < channel_count; ++p) {
    std::vector<std::uint32_t> affected;
    for (const std::uint32_t hop : channel_hops[p]) {
      affected.insert(affected.end(), link_paths[hop].begin(), link_paths[hop].end());
    }
    affected = sorted_unique(std::move(affected));
    std::vector<std::uint32_t> touched;
    for (const std::uint32_t q : affected) {
      touched.insert(touched.end(), channel_hops[q].begin(), channel_hops[q].end());
    }
    push_csr_row(aff_paths_csr_, aff_paths_offsets_, affected);
    push_csr_row(aff_links_csr_, aff_links_offsets_, sorted_unique(std::move(touched)));
  }

  // The channels themselves: one contiguous vector, sized exactly once.
  paths_.reserve(channel_count);
  for (std::size_t p = 0; p < channel_count; ++p) {
    PathChannel channel;
    channel.topo_ = this;
    channel.index_ = static_cast<std::uint32_t>(p);
    channel.name_ = std::move(channel_names[p]);
    // Completion-registry storage from the shard arena (when given): drain-
    // loop registry growth bumps a pointer instead of calling malloc.
    channel.completions_ = BasicIndexedMinHeap<ArenaAllocator<HeapEntry>>(
        ArenaAllocator<HeapEntry>(arena));
    paths_.push_back(std::move(channel));
  }
  cache_routes_.resize(spec_path_count_);
  for (std::size_t p = 0; p < spec_path_count_; ++p) {
    if (cache_hits[p].has_value()) {
      cache_routes_[p] = PathCacheRoute{cache_hits[p]->first,
                                        &paths_[cache_hits[p]->second]};
    }
  }

  channel_dirty_.assign(channel_count, 0);
  dirty_channels_.reserve(channel_count);
}

std::shared_ptr<Channel> Topology::path_channel(std::size_t p) {
  // Aliasing, non-owning: sessions are torn down before the Topology (the
  // FleetScheduler owns both, Topology outermost).
  return {std::shared_ptr<Channel>(), &paths_[p]};
}

std::size_t Topology::video_path_for(int client_id) const {
  const auto id = static_cast<std::size_t>(client_id);
  if (video_assignment_.empty()) return id % spec_path_count_;
  return video_assignment_[id % video_assignment_.size()];
}

std::size_t Topology::audio_path_for(int client_id) const {
  if (audio_assignment_.empty()) return video_path_for(client_id);
  const auto id = static_cast<std::size_t>(client_id);
  return audio_assignment_[id % audio_assignment_.size()];
}

void Topology::population_change(std::size_t p, int delta, double now) {
  PathChannel& path = paths_[p];
  if (delta < 0 && path.active_flows_ <= 0) {
    DMX_COUNT("path.double_removes", 1);
    assert(false && "PathChannel::remove_flow on an idle path (double remove)");
    DMX_ERROR << "PathChannel::remove_flow on an idle path (double remove?) — "
                 "flow accounting is corrupt; clamping at zero";
    return;
  }
  // Advance every affected entity — exactly the paths whose rate this
  // change can move, and the links those paths traverse — to `now` with the
  // OLD populations, before any count mutates. Entities outside the
  // affected set keep their clocks untouched: their rates are unchanged, so
  // advancing them here would only re-partition their integrals (a
  // floating-point difference) without an epoch bump to re-key cached
  // completion predictions.
  {
    const std::uint32_t* const aff = aff_paths_csr_.data() + aff_paths_offsets_[p];
    const std::size_t count = aff_paths_offsets_[p + 1] - aff_paths_offsets_[p];
    for (std::size_t i = 0; i < count; ++i) advance_path(aff[i], now);
  }
  {
    const std::uint32_t* const aff = aff_links_csr_.data() + aff_links_offsets_[p];
    const std::size_t count = aff_links_offsets_[p + 1] - aff_links_offsets_[p];
    for (std::size_t i = 0; i < count; ++i) advance_link(aff[i], now);
  }

  path.active_flows_ += delta;
  path.peak_flows_ = std::max(path.peak_flows_, path.active_flows_);
  {
    const std::uint32_t* const hops = hops_of(p);
    const std::size_t hop_count = hop_count_of(p);
    for (std::size_t i = 0; i < hop_count; ++i) {
      LinkNode& node = links_[hops[i]];
      node.active_flows += delta;
      node.peak_flows = std::max(node.peak_flows, node.active_flows);
      DMX_TRACE_COUNTER(obs::kCatLink, node.trace_track, "active_flows", now,
                        obs::TraceArgs().kv("flows", node.active_flows));
    }
  }
  // Every affected path's completion predictions went stale (its rate, or
  // its binding constraint, may have moved): bump their epochs so the
  // event-heap engine lazily re-keys them, and record them on the dirty
  // list the engine syncs per drain phase.
  {
    const std::uint32_t* const aff = aff_paths_csr_.data() + aff_paths_offsets_[p];
    const std::size_t count = aff_paths_offsets_[p + 1] - aff_paths_offsets_[p];
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t q = aff[i];
      ++paths_[q].epoch_;
      if (channel_dirty_[q] == 0) {
        channel_dirty_[q] = 1;
        dirty_channels_.push_back(q);
      }
    }
  }
  if (delta > 0) {
    DMX_COUNT("path.flows_added", 1);
  } else {
    DMX_COUNT("path.flows_removed", 1);
  }
}

void Topology::advance_path(std::size_t p, double now) {
  PathChannel& path = paths_[p];
  if (now <= path.clock_s_) return;
  if (path.active_flows_ <= 0) {
    // Idle: V_P is frozen (nobody is served), only the clock moves — the
    // same gating net/link.h applies to its service integral.
    path.clock_s_ = now;
    return;
  }
  const std::uint32_t* const hops = hops_of(p);
  const std::size_t hop_count = hop_count_of(p);
  double* const binding = binding_csr_.data() + hop_offsets_[p];
  double inv[kMaxHops];
  for (std::size_t i = 0; i < hop_count; ++i) {
    inv[i] = 1.0 / static_cast<double>(links_[hops[i]].active_flows);
  }
  double at = path.clock_s_;
  while (at < now) {
    double boundary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < hop_count; ++i) {
      boundary = std::min(boundary, links_[hops[i]].trace.next_change_after(at));
    }
    const double seg_end = std::min(boundary, now);
    const double dt = seg_end - at;
    if (dt <= 0.0) break;  // defensive: a trace must advance time
    std::size_t b = 0;
    double best = links_[hops[0]].trace.rate_kbps(at) * inv[0];
    for (std::size_t i = 1; i < hop_count; ++i) {
      const double share = links_[hops[i]].trace.rate_kbps(at) * inv[i];
      if (share < best) {
        best = share;
        b = i;
      }
    }
    const double offered = links_[hops[b]].trace.rate_kbps(at) * dt;
    path.service_kbit_ += offered * inv[b];
    binding[b] += dt;
    at = seg_end;
  }
  path.clock_s_ = now;
}

void Topology::advance_link(std::size_t l, double now) {
  LinkNode& node = links_[l];
  if (now <= node.clock_s) return;
  double at = node.clock_s;
  const double inv_flows =
      node.active_flows > 0 ? 1.0 / static_cast<double>(node.active_flows) : 1.0;
  if (node.saturating) {
    // Every traversing path is bottlenecked here alone: processor sharing
    // saturates the pipe, so delivered == offered while busy. This branch
    // is expression-for-expression Link::advance_to — what keeps a
    // single-link topology bit-identical to the plain fleet.
    while (at < now) {
      const double boundary = node.trace.next_change_after(at);
      const double seg_end = std::min(boundary, now);
      const double dt = seg_end - at;
      if (dt <= 0.0) break;
      const double kbps = node.trace.rate_kbps(at);
      const double offered = kbps * dt;
      node.offered_kbit += offered;
      node.flow_seconds += static_cast<double>(node.active_flows) * dt;
      if (node.active_flows > 0) {
        node.busy_s += dt;
        node.delivered_kbit += offered;
        node.service_kbit += offered * inv_flows;
      }
      if (telemetry_ != nullptr) {
        telemetry_->link_segment(l, at, seg_end, node.active_flows, kbps,
                                 node.active_flows > 0 ? kbps : 0.0);
      }
      at = seg_end;
    }
    node.clock_s = now;
    return;
  }
  // Multi-hop traffic: this link delivers sum over traversing paths q of
  // N_q * rate_q, which can be below capacity when a flow's binding
  // constraint sits elsewhere. Segment boundaries come from every link
  // whose capacity enters those rates (rel span), so each segment
  // integrates a constant.
  const std::uint32_t* const rel = rel_csr_.data() + rel_offsets_[l];
  const std::size_t rel_count = rel_offsets_[l + 1] - rel_offsets_[l];
  const std::uint32_t* const riders = link_paths_csr_.data() + link_paths_offsets_[l];
  const std::size_t rider_count = link_paths_offsets_[l + 1] - link_paths_offsets_[l];
  while (at < now) {
    double boundary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < rel_count; ++i) {
      boundary = std::min(boundary, links_[rel[i]].trace.next_change_after(at));
    }
    const double seg_end = std::min(boundary, now);
    const double dt = seg_end - at;
    if (dt <= 0.0) break;
    const double kbps = node.trace.rate_kbps(at);
    const double offered = kbps * dt;
    node.offered_kbit += offered;
    node.flow_seconds += static_cast<double>(node.active_flows) * dt;
    double delivered_kbps = 0.0;
    if (node.active_flows > 0) {
      node.busy_s += dt;
      node.service_kbit += offered * inv_flows;
      double rate_sum_kbps = 0.0;
      for (std::size_t i = 0; i < rider_count; ++i) {
        const PathChannel& path = paths_[riders[i]];
        if (path.active_flows_ <= 0) continue;
        const std::uint32_t* const hops = hops_of(riders[i]);
        const std::size_t hop_count = hop_count_of(riders[i]);
        double share = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < hop_count; ++j) {
          const LinkNode& h = links_[hops[j]];
          share = std::min(share, h.trace.rate_kbps(at) /
                                      static_cast<double>(std::max(1, h.active_flows)));
        }
        rate_sum_kbps += static_cast<double>(path.active_flows_) * share;
      }
      node.delivered_kbit += rate_sum_kbps * dt;
      delivered_kbps = rate_sum_kbps;
    }
    if (telemetry_ != nullptr) {
      telemetry_->link_segment(l, at, seg_end, node.active_flows, kbps,
                               delivered_kbps);
    }
    at = seg_end;
  }
  node.clock_s = now;
}

void Topology::finalize(double t) {
  for (std::size_t p = 0; p < paths_.size(); ++p) advance_path(p, t);
  for (std::size_t l = 0; l < links_.size(); ++l) advance_link(l, t);
}

std::vector<LinkStats> Topology::link_stats() const {
  std::vector<LinkStats> stats;
  stats.reserve(links_.size());
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const LinkNode& node = links_[l];
    LinkStats s;
    s.name = node.name;
    s.observed_s = node.clock_s;
    s.busy_s = node.busy_s;
    s.flow_seconds = node.flow_seconds;
    s.offered_kbit = node.offered_kbit;
    s.delivered_kbit = node.delivered_kbit;
    s.peak_flows = node.peak_flows;
    s.residual_flows = node.active_flows;
    const std::uint32_t* const riders = link_paths_csr_.data() + link_paths_offsets_[l];
    const std::size_t rider_count = link_paths_offsets_[l + 1] - link_paths_offsets_[l];
    for (std::size_t r = 0; r < rider_count; ++r) {
      const std::size_t q = riders[r];
      const std::uint32_t* const hops = hops_of(q);
      const std::size_t hop_count = hop_count_of(q);
      const double* const binding = binding_csr_.data() + hop_offsets_[q];
      for (std::size_t i = 0; i < hop_count; ++i) {
        if (hops[i] == l) s.binding_s += binding[i];
      }
    }
    stats.push_back(std::move(s));
  }
  return stats;
}

std::vector<PathSummary> Topology::path_stats() const {
  std::vector<PathSummary> stats;
  stats.reserve(spec_path_count_);
  for (std::size_t p = 0; p < spec_path_count_; ++p) {
    const PathChannel& path = paths_[p];
    PathSummary s;
    s.name = path.name_;
    const std::uint32_t* const hops = hops_of(p);
    const std::size_t hop_count = hop_count_of(p);
    const double* const binding = binding_csr_.data() + hop_offsets_[p];
    for (std::size_t i = 0; i < hop_count; ++i) {
      s.hop_names.push_back(links_[hops[i]].name);
    }
    s.binding_s.assign(binding, binding + hop_count);
    s.peak_flows = path.peak_flows_;
    s.residual_flows = path.active_flows_;
    s.service_kbit = path.service_kbit_;
    stats.push_back(std::move(s));
  }
  return stats;
}

void Topology::name_trace_tracks() const {
  obs::Tracer* const tracer = obs::tracer();
  if (tracer == nullptr) return;
  for (const LinkNode& node : links_) {
    tracer->name_track(node.trace_track, "link " + node.name);
  }
}

double Topology::path_rate_at(std::size_t p, double t) const {
  const std::uint32_t* const hops = hops_of(p);
  const std::size_t hop_count = hop_count_of(p);
  double rate = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < hop_count; ++i) {
    rate = std::min(rate, link_fair_share_at(hops[i], t));
  }
  return rate;
}

double Topology::link_fair_share_at(std::size_t l, double t) const {
  const LinkNode& node = links_[l];
  return node.trace.rate_kbps(t) / static_cast<double>(std::max(1, node.active_flows));
}

}  // namespace demuxabr::fleet
