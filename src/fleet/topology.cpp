#include "fleet/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/strings.h"

namespace demuxabr::fleet {
namespace {

/// Hard cap on path depth so the pure walks can use stack buffers for the
/// hoisted per-hop inverse populations. validate() enforces it.
constexpr std::size_t kMaxHops = 16;

std::vector<std::size_t> sorted_unique(std::vector<std::size_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

// --- TopologySpec ---

std::size_t TopologySpec::add_link(std::string name, BandwidthTrace trace) {
  links.push_back({std::move(name), std::move(trace)});
  return links.size() - 1;
}

std::size_t TopologySpec::add_path(std::string name, std::vector<std::size_t> hops) {
  paths.push_back({std::move(name), std::move(hops)});
  return paths.size() - 1;
}

TopologySpec TopologySpec::single(BandwidthTrace trace, std::string name) {
  TopologySpec spec;
  const std::size_t link = spec.add_link(std::move(name), std::move(trace));
  spec.add_path("path", {link});
  return spec;
}

TopologySpec TopologySpec::sharded(int edge_count, const BandwidthTrace& access,
                                   const BandwidthTrace& edge,
                                   const BandwidthTrace& core) {
  TopologySpec spec;
  const std::size_t core_link = spec.add_link("core", core);
  for (int e = 0; e < edge_count; ++e) {
    const std::size_t access_link = spec.add_link(format("access-%d", e), access);
    const std::size_t edge_link = spec.add_link(format("edge-%d", e), edge);
    spec.add_path(format("shard-%d", e), {access_link, edge_link, core_link});
  }
  return spec;
}

std::vector<std::size_t> TopologySpec::block_assignment(std::size_t path_count,
                                                        std::size_t clients_per_path) {
  std::vector<std::size_t> assignment;
  assignment.reserve(path_count * clients_per_path);
  for (std::size_t p = 0; p < path_count; ++p) {
    for (std::size_t c = 0; c < clients_per_path; ++c) assignment.push_back(p);
  }
  return assignment;
}

std::string TopologySpec::validate() const {
  if (links.empty()) return "topology has no links";
  if (paths.empty()) return "topology has no paths";
  for (std::size_t l = 0; l < links.size(); ++l) {
    if (links[l].name.empty()) return format("link %zu is unnamed", l);
  }
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const PathSpec& path = paths[p];
    if (path.hops.empty()) return format("path %zu has no hops", p);
    if (path.hops.size() > kMaxHops) {
      return format("path %zu has %zu hops (max %zu)", p, path.hops.size(), kMaxHops);
    }
    std::vector<std::size_t> seen = path.hops;
    std::sort(seen.begin(), seen.end());
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (seen[i] >= links.size()) {
        return format("path %zu references link %zu (only %zu links)", p, seen[i],
                      links.size());
      }
      if (i > 0 && seen[i] == seen[i - 1]) {
        return format("path %zu traverses link %zu twice", p, seen[i]);
      }
    }
  }
  for (std::size_t p = 0; p < paths.size(); ++p) {
    std::size_t cached_hops = 0;
    for (const std::size_t hop : paths[p].hops) {
      if (links[hop].cache.has_value()) ++cached_hops;
    }
    if (cached_hops > 1) {
      return format("path %zu traverses %zu cached links (max 1)", p, cached_hops);
    }
  }
  for (const std::size_t p : video_assignment) {
    if (p >= paths.size()) return format("video assignment references path %zu", p);
  }
  for (const std::size_t p : audio_assignment) {
    if (p >= paths.size()) return format("audio assignment references path %zu", p);
  }
  return "";
}

// --- PathChannel ---

double PathChannel::add_flow(double now) {
  topo_->population_change(index_, +1, now);
  return service_kbit_;
}

void PathChannel::remove_flow(double now) {
  topo_->population_change(index_, -1, now);
}

double PathChannel::service_at(double t) const {
  if (t <= clock_s_) return service_kbit_;
  if (active_flows_ <= 0) return service_kbit_;  // idle: nobody is served
  const std::vector<Topology::LinkNode>& links = topo_->links_;
  const std::size_t hop_count = hops_.size();
  double inv[kMaxHops];
  for (std::size_t i = 0; i < hop_count; ++i) {
    // Every hop carries at least this path's flows, so the count is >= 1.
    inv[i] = 1.0 / static_cast<double>(links[hops_[i]].active_flows);
  }
  double v = service_kbit_;
  double at = clock_s_;
  while (at < t) {
    double boundary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < hop_count; ++i) {
      boundary = std::min(boundary, links[hops_[i]].trace.next_change_after(at));
    }
    const double seg_end = std::min(boundary, t);
    const double dt = seg_end - at;
    if (dt <= 0.0) break;
    // Binding hop: smallest fair share; ties keep the earliest hop.
    std::size_t b = 0;
    double best = links[hops_[0]].trace.rate_kbps(at) * inv[0];
    for (std::size_t i = 1; i < hop_count; ++i) {
      const double share = links[hops_[i]].trace.rate_kbps(at) * inv[i];
      if (share < best) {
        best = share;
        b = i;
      }
    }
    v += links[hops_[b]].trace.rate_kbps(at) * dt * inv[b];
    at = seg_end;
  }
  return v;
}

double PathChannel::time_when_service_reaches(double v_target) const {
  if (v_target <= service_kbit_) return clock_s_;
  if (active_flows_ <= 0) return std::numeric_limits<double>::infinity();
  const std::vector<Topology::LinkNode>& links = topo_->links_;
  const std::size_t hop_count = hops_.size();
  double inv[kMaxHops];
  for (std::size_t i = 0; i < hop_count; ++i) {
    inv[i] = 1.0 / static_cast<double>(links[hops_[i]].active_flows);
  }
  double v = service_kbit_;
  double at = clock_s_;
  // Walk forward one capacity segment at a time, as net/link.h does; the
  // iteration cap guards against a pathological all-zero tail.
  for (int guard = 0; guard < 1000000; ++guard) {
    double boundary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < hop_count; ++i) {
      boundary = std::min(boundary, links[hops_[i]].trace.next_change_after(at));
    }
    double per_flow_kbps = links[hops_[0]].trace.rate_kbps(at) * inv[0];
    for (std::size_t i = 1; i < hop_count; ++i) {
      const double share = links[hops_[i]].trace.rate_kbps(at) * inv[i];
      if (share < per_flow_kbps) per_flow_kbps = share;
    }
    if (per_flow_kbps > 0.0) {
      const double t_hit = at + (v_target - v) / per_flow_kbps;
      if (t_hit <= boundary) return t_hit;
      if (!std::isfinite(boundary)) return t_hit;
      v += per_flow_kbps * (boundary - at);
    } else if (!std::isfinite(boundary)) {
      return std::numeric_limits<double>::infinity();
    }
    at = boundary;
  }
  return std::numeric_limits<double>::infinity();
}

double PathChannel::capacity_kbps(double t) const {
  const std::vector<Topology::LinkNode>& links = topo_->links_;
  double cap = std::numeric_limits<double>::infinity();
  for (const std::size_t hop : hops_) {
    cap = std::min(cap, links[hop].trace.rate_kbps(t));
  }
  return cap;
}

// --- Topology ---

Topology::Topology(TopologySpec spec) {
  const std::string problem = spec.validate();
  assert(problem.empty() && "TopologySpec::validate failed");
  if (!problem.empty()) {
    DMX_ERROR << "invalid topology (" << problem << ") — behaviour is undefined";
  }
  video_assignment_ = std::move(spec.video_assignment);
  audio_assignment_ = std::move(spec.audio_assignment);

  links_.reserve(spec.links.size());
  for (std::size_t l = 0; l < spec.links.size(); ++l) {
    LinkNode node;
    node.name = std::move(spec.links[l].name);
    node.trace = std::move(spec.links[l].trace);
    node.trace_track = spec.links[l].trace_track != 0
                           ? spec.links[l].trace_track
                           : obs::kLinkTrackBase + static_cast<std::uint32_t>(l);
    links_.push_back(std::move(node));
  }

  paths_.reserve(spec.paths.size());
  for (std::size_t p = 0; p < spec.paths.size(); ++p) {
    auto path = std::unique_ptr<PathChannel>(new PathChannel());
    path->topo_ = this;
    path->index_ = p;
    path->name_ = std::move(spec.paths[p].name);
    path->hops_ = std::move(spec.paths[p].hops);
    path->binding_s_.assign(path->hops_.size(), 0.0);
    for (const std::size_t hop : path->hops_) links_[hop].paths.push_back(p);
    paths_.push_back(std::move(path));
  }
  spec_path_count_ = paths_.size();

  // Derived hit channels: for every spec path with a cached hop, the route a
  // cache hit rides — the hop prefix ending at the cached link. When the
  // cached link is the last hop the full path already IS that route, so the
  // hit reuses its channel (which also keeps a cached single-link topology
  // bit-identical to the plain fleet: routing can never diverge there).
  // Derived channels are full topology citizens — they join their links'
  // path lists, affected sets and rel_links below, so populations riding
  // them shape every fair share exactly like spec-path populations.
  cache_routes_.resize(spec_path_count_);
  for (const LinkSpec& link : spec.links) has_caches_ |= link.cache.has_value();
  if (has_caches_) {
    for (std::size_t p = 0; p < spec_path_count_; ++p) {
      const std::vector<std::size_t>& hops = paths_[p]->hops_;
      for (std::size_t i = 0; i < hops.size(); ++i) {
        if (!spec.links[hops[i]].cache.has_value()) continue;
        if (i + 1 == hops.size()) {
          cache_routes_[p] = PathCacheRoute{hops[i], paths_[p].get()};
        } else {
          const std::size_t index = paths_.size();
          auto hit = std::unique_ptr<PathChannel>(new PathChannel());
          hit->topo_ = this;
          hit->index_ = index;
          hit->name_ = paths_[p]->name_ + ":hit";
          hit->hops_.assign(hops.begin(), hops.begin() + static_cast<std::ptrdiff_t>(i + 1));
          hit->binding_s_.assign(hit->hops_.size(), 0.0);
          for (const std::size_t hop : hit->hops_) links_[hop].paths.push_back(index);
          cache_routes_[p] = PathCacheRoute{hops[i], hit.get()};
          paths_.push_back(std::move(hit));
        }
        break;  // validate(): at most one cached hop per path
      }
    }
  }

  for (LinkNode& node : links_) {
    node.saturating = true;
    std::vector<std::size_t> rel;
    for (const std::size_t q : node.paths) {
      if (paths_[q]->hops_.size() > 1) node.saturating = false;
      rel.insert(rel.end(), paths_[q]->hops_.begin(), paths_[q]->hops_.end());
    }
    node.rel_links = sorted_unique(std::move(rel));
  }

  affected_paths_.resize(paths_.size());
  affected_links_.resize(paths_.size());
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    std::vector<std::size_t> affected;
    for (const std::size_t hop : paths_[p]->hops_) {
      affected.insert(affected.end(), links_[hop].paths.begin(),
                      links_[hop].paths.end());
    }
    affected_paths_[p] = sorted_unique(std::move(affected));
    std::vector<std::size_t> touched;
    for (const std::size_t q : affected_paths_[p]) {
      touched.insert(touched.end(), paths_[q]->hops_.begin(), paths_[q]->hops_.end());
    }
    affected_links_[p] = sorted_unique(std::move(touched));
  }
}

std::shared_ptr<Channel> Topology::path_channel(std::size_t p) {
  // Aliasing, non-owning: sessions are torn down before the Topology (the
  // FleetScheduler owns both, Topology outermost).
  return {std::shared_ptr<Channel>(), paths_[p].get()};
}

std::size_t Topology::video_path_for(int client_id) const {
  const auto id = static_cast<std::size_t>(client_id);
  if (video_assignment_.empty()) return id % spec_path_count_;
  return video_assignment_[id % video_assignment_.size()];
}

std::size_t Topology::audio_path_for(int client_id) const {
  if (audio_assignment_.empty()) return video_path_for(client_id);
  const auto id = static_cast<std::size_t>(client_id);
  return audio_assignment_[id % audio_assignment_.size()];
}

void Topology::population_change(std::size_t p, int delta, double now) {
  PathChannel& path = *paths_[p];
  if (delta < 0 && path.active_flows_ <= 0) {
    DMX_COUNT("path.double_removes", 1);
    assert(false && "PathChannel::remove_flow on an idle path (double remove)");
    DMX_ERROR << "PathChannel::remove_flow on an idle path (double remove?) — "
                 "flow accounting is corrupt; clamping at zero";
    return;
  }
  // Advance every affected entity — exactly the paths whose rate this
  // change can move, and the links those paths traverse — to `now` with the
  // OLD populations, before any count mutates. Entities outside the
  // affected set keep their clocks untouched: their rates are unchanged, so
  // advancing them here would only re-partition their integrals (a
  // floating-point difference) without an epoch bump to re-key cached
  // completion predictions.
  for (const std::size_t q : affected_paths_[p]) advance_path(q, now);
  for (const std::size_t l : affected_links_[p]) advance_link(l, now);

  path.active_flows_ += delta;
  path.peak_flows_ = std::max(path.peak_flows_, path.active_flows_);
  for (const std::size_t hop : path.hops_) {
    LinkNode& node = links_[hop];
    node.active_flows += delta;
    node.peak_flows = std::max(node.peak_flows, node.active_flows);
    DMX_TRACE_COUNTER(obs::kCatLink, node.trace_track, "active_flows", now,
                      obs::TraceArgs().kv("flows", node.active_flows));
  }
  // Every affected path's completion predictions went stale (its rate, or
  // its binding constraint, may have moved): bump their epochs so the
  // event-heap engine lazily re-keys them.
  for (const std::size_t q : affected_paths_[p]) ++paths_[q]->epoch_;
  if (delta > 0) {
    DMX_COUNT("path.flows_added", 1);
  } else {
    DMX_COUNT("path.flows_removed", 1);
  }
}

void Topology::advance_path(std::size_t p, double now) {
  PathChannel& path = *paths_[p];
  if (now <= path.clock_s_) return;
  if (path.active_flows_ <= 0) {
    // Idle: V_P is frozen (nobody is served), only the clock moves — the
    // same gating net/link.h applies to its service integral.
    path.clock_s_ = now;
    return;
  }
  const std::size_t hop_count = path.hops_.size();
  double inv[kMaxHops];
  for (std::size_t i = 0; i < hop_count; ++i) {
    inv[i] = 1.0 / static_cast<double>(links_[path.hops_[i]].active_flows);
  }
  double at = path.clock_s_;
  while (at < now) {
    double boundary = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < hop_count; ++i) {
      boundary = std::min(boundary, links_[path.hops_[i]].trace.next_change_after(at));
    }
    const double seg_end = std::min(boundary, now);
    const double dt = seg_end - at;
    if (dt <= 0.0) break;  // defensive: a trace must advance time
    std::size_t b = 0;
    double best = links_[path.hops_[0]].trace.rate_kbps(at) * inv[0];
    for (std::size_t i = 1; i < hop_count; ++i) {
      const double share = links_[path.hops_[i]].trace.rate_kbps(at) * inv[i];
      if (share < best) {
        best = share;
        b = i;
      }
    }
    const double offered = links_[path.hops_[b]].trace.rate_kbps(at) * dt;
    path.service_kbit_ += offered * inv[b];
    path.binding_s_[b] += dt;
    at = seg_end;
  }
  path.clock_s_ = now;
}

void Topology::advance_link(std::size_t l, double now) {
  LinkNode& node = links_[l];
  if (now <= node.clock_s) return;
  double at = node.clock_s;
  const double inv_flows =
      node.active_flows > 0 ? 1.0 / static_cast<double>(node.active_flows) : 1.0;
  if (node.saturating) {
    // Every traversing path is bottlenecked here alone: processor sharing
    // saturates the pipe, so delivered == offered while busy. This branch
    // is expression-for-expression Link::advance_to — what keeps a
    // single-link topology bit-identical to the plain fleet.
    while (at < now) {
      const double boundary = node.trace.next_change_after(at);
      const double seg_end = std::min(boundary, now);
      const double dt = seg_end - at;
      if (dt <= 0.0) break;
      const double kbps = node.trace.rate_kbps(at);
      const double offered = kbps * dt;
      node.offered_kbit += offered;
      node.flow_seconds += static_cast<double>(node.active_flows) * dt;
      if (node.active_flows > 0) {
        node.busy_s += dt;
        node.delivered_kbit += offered;
        node.service_kbit += offered * inv_flows;
      }
      at = seg_end;
    }
    node.clock_s = now;
    return;
  }
  // Multi-hop traffic: this link delivers sum over traversing paths q of
  // N_q * rate_q, which can be below capacity when a flow's binding
  // constraint sits elsewhere. Segment boundaries come from every link
  // whose capacity enters those rates (rel_links), so each segment
  // integrates a constant.
  while (at < now) {
    double boundary = std::numeric_limits<double>::infinity();
    for (const std::size_t r : node.rel_links) {
      boundary = std::min(boundary, links_[r].trace.next_change_after(at));
    }
    const double seg_end = std::min(boundary, now);
    const double dt = seg_end - at;
    if (dt <= 0.0) break;
    const double kbps = node.trace.rate_kbps(at);
    const double offered = kbps * dt;
    node.offered_kbit += offered;
    node.flow_seconds += static_cast<double>(node.active_flows) * dt;
    if (node.active_flows > 0) {
      node.busy_s += dt;
      node.service_kbit += offered * inv_flows;
      double rate_sum_kbps = 0.0;
      for (const std::size_t q : node.paths) {
        const PathChannel& path = *paths_[q];
        if (path.active_flows_ <= 0) continue;
        double share = std::numeric_limits<double>::infinity();
        for (const std::size_t hop : path.hops_) {
          const LinkNode& h = links_[hop];
          share = std::min(share, h.trace.rate_kbps(at) /
                                      static_cast<double>(std::max(1, h.active_flows)));
        }
        rate_sum_kbps += static_cast<double>(path.active_flows_) * share;
      }
      node.delivered_kbit += rate_sum_kbps * dt;
    }
    at = seg_end;
  }
  node.clock_s = now;
}

void Topology::finalize(double t) {
  for (std::size_t p = 0; p < paths_.size(); ++p) advance_path(p, t);
  for (std::size_t l = 0; l < links_.size(); ++l) advance_link(l, t);
}

std::vector<LinkStats> Topology::link_stats() const {
  std::vector<LinkStats> stats;
  stats.reserve(links_.size());
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const LinkNode& node = links_[l];
    LinkStats s;
    s.name = node.name;
    s.observed_s = node.clock_s;
    s.busy_s = node.busy_s;
    s.flow_seconds = node.flow_seconds;
    s.offered_kbit = node.offered_kbit;
    s.delivered_kbit = node.delivered_kbit;
    s.peak_flows = node.peak_flows;
    s.residual_flows = node.active_flows;
    for (const std::size_t q : node.paths) {
      const PathChannel& path = *paths_[q];
      for (std::size_t i = 0; i < path.hops_.size(); ++i) {
        if (path.hops_[i] == l) s.binding_s += path.binding_s_[i];
      }
    }
    stats.push_back(std::move(s));
  }
  return stats;
}

std::vector<PathSummary> Topology::path_stats() const {
  std::vector<PathSummary> stats;
  stats.reserve(spec_path_count_);
  for (std::size_t p = 0; p < spec_path_count_; ++p) {
    const std::unique_ptr<PathChannel>& path = paths_[p];
    PathSummary s;
    s.name = path->name_;
    for (const std::size_t hop : path->hops_) s.hop_names.push_back(links_[hop].name);
    s.binding_s = path->binding_s_;
    s.peak_flows = path->peak_flows_;
    s.residual_flows = path->active_flows_;
    s.service_kbit = path->service_kbit_;
    stats.push_back(std::move(s));
  }
  return stats;
}

void Topology::name_trace_tracks() const {
  obs::Tracer* const tracer = obs::tracer();
  if (tracer == nullptr) return;
  for (const LinkNode& node : links_) {
    tracer->name_track(node.trace_track, "link " + node.name);
  }
}

double Topology::path_rate_at(std::size_t p, double t) const {
  const PathChannel& path = *paths_[p];
  double rate = std::numeric_limits<double>::infinity();
  for (const std::size_t hop : path.hops_) {
    rate = std::min(rate, link_fair_share_at(hop, t));
  }
  return rate;
}

double Topology::link_fair_share_at(std::size_t l, double t) const {
  const LinkNode& node = links_[l];
  return node.trace.rate_kbps(t) / static_cast<double>(std::max(1, node.active_flows));
}

}  // namespace demuxabr::fleet
