#include "fleet/shard.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <memory>
#include <utility>

#include "fleet/scheduler.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace demuxabr::fleet {
namespace {

/// Plain union-find over link indices (path compression, union by attaching
/// to the smaller root so component representatives stay the minimum link
/// index — which is also the shard ordering key).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// The spec's client→path rule (Topology::video_path_for, but on the spec,
/// before any Topology is built).
std::size_t video_path_of(const TopologySpec& spec, int client_id) {
  const auto id = static_cast<std::size_t>(client_id);
  if (spec.video_assignment.empty()) return id % spec.paths.size();
  return spec.video_assignment[id % spec.video_assignment.size()];
}

std::size_t audio_path_of(const TopologySpec& spec, int client_id) {
  if (spec.audio_assignment.empty()) return video_path_of(spec, client_id);
  const auto id = static_cast<std::size_t>(client_id);
  return spec.audio_assignment[id % spec.audio_assignment.size()];
}

void merge_profiles(obs::EngineProfile& into, const obs::EngineProfile& from) {
  into.enabled = into.enabled || from.enabled;
  into.drain.wall_s += from.drain.wall_s;
  into.drain.calls += from.drain.calls;
  into.register_phase.wall_s += from.register_phase.wall_s;
  into.register_phase.calls += from.register_phase.calls;
  into.admit.wall_s += from.admit.wall_s;
  into.admit.calls += from.admit.calls;
  into.heap_pops += from.heap_pops;
  into.link_sync_checks += from.link_sync_checks;
  into.link_sync_refreshes += from.link_sync_refreshes;
}

}  // namespace

ShardPartition partition_fleet(const TopologySpec& spec,
                               const std::vector<ClientPlan>& plans) {
  assert(!spec.links.empty() && !spec.paths.empty());
  UnionFind uf(spec.links.size());
  for (const PathSpec& path : spec.paths) {
    for (std::size_t h = 1; h < path.hops.size(); ++h) {
      uf.unite(path.hops[0], path.hops[h]);
    }
  }
  // A session spans its client's video AND audio paths: couple them so the
  // whole session lands in one shard. (No-op when audio rides video.)
  if (!spec.audio_assignment.empty()) {
    for (const ClientPlan& plan : plans) {
      uf.unite(spec.paths[video_path_of(spec, plan.id)].hops[0],
               spec.paths[audio_path_of(spec, plan.id)].hops[0]);
    }
  }

  // Components ordered by smallest link index == their root (union by
  // smaller root guarantees it). A component no path traverses (an unused
  // link) cannot form a valid sub-spec; it is causally inert — no flow ever
  // joins it — so its links ride along in shard 0 with idle books.
  std::vector<std::size_t> shard_of_link(spec.links.size());
  std::vector<bool> root_has_path(spec.links.size(), false);
  for (const PathSpec& path : spec.paths) {
    root_has_path[uf.find(path.hops[0])] = true;
  }
  std::vector<std::size_t> roots;
  for (std::size_t l = 0; l < spec.links.size(); ++l) {
    const std::size_t root = uf.find(l);
    if (root == l && root_has_path[root]) roots.push_back(l);
    shard_of_link[l] = root;
  }
  std::vector<std::size_t> shard_index(spec.links.size(), 0);
  for (std::size_t s = 0; s < roots.size(); ++s) shard_index[roots[s]] = s;

  ShardPartition partition;
  partition.shards.resize(roots.size());

  // Links: ascending global order within each shard; remember the global →
  // local renumbering for hop remapping.
  std::vector<std::size_t> local_link(spec.links.size(), 0);
  for (std::size_t l = 0; l < spec.links.size(); ++l) {
    FleetShard& shard = partition.shards[shard_index[shard_of_link[l]]];
    local_link[l] = shard.spec.links.size();
    LinkSpec link = spec.links[l];
    // Pin the global trace track so a sharded run's link traces stay
    // attributable to the original topology's link ids.
    if (link.trace_track == 0) {
      link.trace_track = obs::kLinkTrackBase + static_cast<std::uint32_t>(l);
    }
    shard.spec.links.push_back(std::move(link));
    shard.link_ids.push_back(l);
  }

  // Paths: ascending global order; hops renumbered into the shard.
  std::vector<std::size_t> shard_of_path(spec.paths.size(), 0);
  std::vector<std::size_t> local_path(spec.paths.size(), 0);
  for (std::size_t p = 0; p < spec.paths.size(); ++p) {
    const std::size_t s = shard_index[shard_of_link[spec.paths[p].hops[0]]];
    shard_of_path[p] = s;
    FleetShard& shard = partition.shards[s];
    local_path[p] = shard.spec.paths.size();
    PathSpec path;
    path.name = spec.paths[p].name;
    path.hops.reserve(spec.paths[p].hops.size());
    for (const std::size_t hop : spec.paths[p].hops) {
      path.hops.push_back(local_link[hop]);
    }
    shard.spec.paths.push_back(std::move(path));
    shard.path_ids.push_back(p);
  }

  // Clients: a plan lands in its video path's shard, keeping arrival order
  // (plans are arrival-sorted; filtering preserves that). Local ids are the
  // rank of the global id within the shard — a monotone renumbering, so
  // same-time tie-breaks by id compare identically in the sub-simulation.
  const bool split_audio = !spec.audio_assignment.empty();
  for (const ClientPlan& plan : plans) {
    const std::size_t s = shard_index[shard_of_link[spec.paths[video_path_of(spec, plan.id)].hops[0]]];
    partition.shards[s].plans.push_back(plan);
  }
  for (FleetShard& shard : partition.shards) {
    shard.client_ids.reserve(shard.plans.size());
    for (const ClientPlan& plan : shard.plans) shard.client_ids.push_back(plan.id);
    std::sort(shard.client_ids.begin(), shard.client_ids.end());
    // Explicit per-local-client assignments: with vector length == client
    // count, `local_id % size` resolves each client exactly.
    shard.spec.video_assignment.resize(shard.client_ids.size());
    if (split_audio) shard.spec.audio_assignment.resize(shard.client_ids.size());
    for (std::size_t local = 0; local < shard.client_ids.size(); ++local) {
      const int global_id = shard.client_ids[local];
      shard.spec.video_assignment[local] = local_path[video_path_of(spec, global_id)];
      if (split_audio) {
        shard.spec.audio_assignment[local] = local_path[audio_path_of(spec, global_id)];
      }
    }
    for (ClientPlan& plan : shard.plans) {
      const auto at = std::lower_bound(shard.client_ids.begin(),
                                       shard.client_ids.end(), plan.id);
      plan.id = static_cast<int>(at - shard.client_ids.begin());
    }
  }
  return partition;
}

FleetResult run_fleet_sharded(const Content& content, const ManifestView& view,
                              const BandwidthTrace& bottleneck,
                              const FleetConfig& config) {
  assert(config.topology.has_value() && "shard runner needs a topology");
  const std::vector<ClientPlan> plans = plan_population(config);
  ShardPartition partition = partition_fleet(*config.topology, plans);

  if (partition.shards.size() <= 1) {
    FleetConfig serial = config;
    serial.threads = 1;
    FleetScheduler scheduler(content, view, bottleneck, serial);
    return scheduler.run();
  }

  // The streaming decision is global (the threshold compares the *fleet*
  // size); shards then force it on or off explicitly so a small shard of a
  // huge fleet cannot fall back to full logs.
  const bool streaming = config.streaming.enabled_for(plans.size());

  // Prototype without the global topology: copying `config` per shard and
  // then assigning the sub-spec over it would leave every scheduler's
  // assignment vectors at full-population capacity (vector copy-assignment
  // never shrinks) — O(shards × clients) resident memory at 1M clients.
  FleetConfig proto = config;
  proto.topology.reset();
  proto.threads = 1;
  proto.streaming.client_threshold =
      streaming ? 0 : std::numeric_limits<std::size_t>::max();
  // Cache-aware fleets: build the origin catalog ONCE and share it
  // read-only across every shard's CdnState (the caches themselves are
  // shard-local — a cached link and all its paths form one component).
  bool any_cache = false;
  for (const LinkSpec& link : config.topology->links) {
    any_cache |= link.cache.has_value();
  }
  if (any_cache && proto.cdn.catalog == nullptr) {
    proto.cdn.catalog = make_fleet_catalog(content, proto.cdn.storage);
  }

  std::vector<std::unique_ptr<FleetScheduler>> schedulers;
  schedulers.reserve(partition.shards.size());
  for (const FleetShard& shard : partition.shards) {
    FleetConfig sub = proto;
    sub.client_count = static_cast<int>(shard.plans.size());
    sub.topology = shard.spec;
    schedulers.push_back(
        std::make_unique<FleetScheduler>(content, view, bottleneck, std::move(sub)));
  }

  // Phase 1 — engines, concurrently; results keyed by shard id (completion
  // order never leaks: util/parallel.h).
  std::vector<FleetResult> results = fan_out_ordered(
      partition.shards.size(), config.threads, [&](std::size_t s) {
        return schedulers[s]->run_engine(partition.shards[s].plans);
      });

  // Phase 2 — close every shard's link books at the global end time, so
  // idle tails advance exactly as the whole-topology serial run's finalize.
  double end_time = 0.0;
  for (const FleetResult& r : results) end_time = std::max(end_time, r.end_time_s);
  for (std::size_t s = 0; s < results.size(); ++s) {
    schedulers[s]->close_links(results[s], end_time);
  }

  // Phase 3 — deterministic merge in shard-id order.
  FleetResult merged;
  merged.end_time_s = end_time;
  merged.split_audio = !config.topology->audio_assignment.empty();
  merged.links.resize(config.topology->links.size());
  merged.paths.resize(config.topology->paths.size());
  if (streaming) {
    merged.streaming.emplace(config.streaming.relative_error);
    merged.streaming->paths.resize(config.topology->paths.size());
  } else {
    merged.clients.reserve(plans.size());
  }
  if (config.telemetry.enabled) {
    // Pre-seed the global link series (declaration order, names from the
    // spec) so per-shard merges land on the right global slots via
    // shard.link_ids even when a shard saw no traffic.
    merged.timeline.emplace();
    merged.timeline->bin_s = config.telemetry.bin_s > 0.0 ? config.telemetry.bin_s : 1.0;
    merged.timeline->links.resize(config.topology->links.size());
    for (std::size_t l = 0; l < config.topology->links.size(); ++l) {
      merged.timeline->links[l].name = config.topology->links[l].name;
    }
  }
  for (std::size_t s = 0; s < results.size(); ++s) {
    const FleetShard& shard = partition.shards[s];
    FleetResult& result = results[s];
    merged.steps += result.steps;
    merged.client_digest += result.client_digest;
    merge_profiles(merged.profile, result.profile);
    for (std::size_t l = 0; l < shard.link_ids.size(); ++l) {
      merged.links[shard.link_ids[l]] = std::move(result.links[l]);
    }
    for (std::size_t p = 0; p < shard.path_ids.size(); ++p) {
      merged.paths[shard.path_ids[p]] = std::move(result.paths[p]);
    }
    for (CdnStats& cdn : result.cdns) {
      // Rewrite the shard-local link index to the global topology's.
      cdn.link = shard.link_ids[cdn.link];
      merged.cdns.push_back(std::move(cdn));
    }
    if (merged.timeline.has_value() && result.timeline.has_value()) {
      // Integer-accumulator merge in shard-id order; link_ids maps the
      // shard's local link series onto the global slots seeded above.
      merged.timeline->merge(*result.timeline, &shard.link_ids);
    }
    if (streaming) {
      merged.streaming->merge(*result.streaming, &shard.path_ids);
    } else {
      for (ClientResult& client : result.clients) {
        client.id = shard.client_ids[static_cast<std::size_t>(client.id)];
        if (client.video_path >= 0) {
          client.video_path = static_cast<int>(
              shard.path_ids[static_cast<std::size_t>(client.video_path)]);
        }
        if (client.audio_path >= 0) {
          client.audio_path = static_cast<int>(
              shard.path_ids[static_cast<std::size_t>(client.audio_path)]);
        }
        merged.clients.push_back(std::move(client));
      }
    }
  }
  if (!streaming) {
    std::sort(merged.clients.begin(), merged.clients.end(),
              [](const ClientResult& a, const ClientResult& b) { return a.id < b.id; });
  }
  // Shards are visited in shard-id order (smallest link first) but a later
  // shard can own an earlier cached link id; re-sort so the merged order —
  // and hence the fingerprint — matches the serial run's ascending order.
  std::sort(merged.cdns.begin(), merged.cdns.end(),
            [](const CdnStats& a, const CdnStats& b) { return a.link < b.link; });
  // Pad every merged series to the common bin count and restore the serial
  // run's cdn ordering (ascending link index).
  if (merged.timeline.has_value()) merged.timeline->normalize();
  merged.video_link = merged.links.front();
  merged.audio_link = merged.video_link;
  return merged;
}

}  // namespace demuxabr::fleet
