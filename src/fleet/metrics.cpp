#include "fleet/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace demuxabr::fleet {
namespace {

/// Jain's index from exact moment sums — float-for-float the formula of
/// util/stats.h jain_fairness, evaluated on accumulated Σx / Σx² instead of
/// a materialized vector (the streaming path never holds one).
double jain_from_moments(double sum, double sq_sum, std::size_t n) {
  if (n == 0) return 0.0;
  if (sq_sum <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(n) * sq_sum);
}

/// Per-client derived scalars shared by the full and streaming aggregation
/// paths (one definition so the two modes cannot drift).
struct ClientScalars {
  double video_kbps = 0.0;
  double throughput = 0.0;  ///< bytes per active second
  double stall_ratio = 0.0;
  double startup_s = 0.0;
  double imbalance_s = 0.0;
  double active_s = 0.0;  ///< session wall time (end − arrival)
};

ClientScalars derive_scalars(const ClientResult& client) {
  ClientScalars s;
  s.video_kbps = client.qoe.avg_video_kbps;
  s.active_s = client.log.end_time_s - client.arrival_s;
  const double active_s = s.active_s;
  if (active_s > 0.0) {
    s.throughput =
        static_cast<double>(client.log.total_downloaded_bytes()) / active_s;
    s.stall_ratio = client.log.total_stall_s() / active_s;
  }
  s.startup_s = client.log.startup_delay_s;
  s.imbalance_s = client.log.mean_buffer_imbalance_s();
  return s;
}

}  // namespace

StreamingFleetStats::StreamingFleetStats(double relative_error)
    : video_kbps(relative_error),
      stall_ratio(relative_error),
      startup_delay_s(relative_error),
      buffer_imbalance_s(relative_error) {}

void StreamingFleetStats::add_client(const ClientResult& client) {
  const ClientScalars s = derive_scalars(client);
  ++clients;
  if (client.log.completed) ++completed;
  if (client.departed_early) ++departed_early;
  qoe_sum += client.qoe.qoe_score;
  active_s_sum += s.active_s;
  video_kbps_sum += s.video_kbps;
  video_kbps_sq_sum += s.video_kbps * s.video_kbps;
  throughput_sum += s.throughput;
  throughput_sq_sum += s.throughput * s.throughput;
  video_kbps.add(s.video_kbps);
  stall_ratio.add(s.stall_ratio);
  startup_delay_s.add(s.startup_s);
  buffer_imbalance_s.add(s.imbalance_s);
  if (client.video_path >= 0 &&
      static_cast<std::size_t>(client.video_path) < paths.size()) {
    PathAcc& acc = paths[static_cast<std::size_t>(client.video_path)];
    ++acc.clients;
    acc.video_sum += s.video_kbps;
    acc.video_sq_sum += s.video_kbps * s.video_kbps;
    acc.throughput_sum += s.throughput;
    acc.throughput_sq_sum += s.throughput * s.throughput;
    acc.stall_ratio_sum += s.stall_ratio;
  }
}

void StreamingFleetStats::merge(const StreamingFleetStats& other,
                                const std::vector<std::size_t>* path_map) {
  clients += other.clients;
  completed += other.completed;
  departed_early += other.departed_early;
  qoe_sum += other.qoe_sum;
  active_s_sum += other.active_s_sum;
  video_kbps_sum += other.video_kbps_sum;
  video_kbps_sq_sum += other.video_kbps_sq_sum;
  throughput_sum += other.throughput_sum;
  throughput_sq_sum += other.throughput_sq_sum;
  video_kbps.merge(other.video_kbps);
  stall_ratio.merge(other.stall_ratio);
  startup_delay_s.merge(other.startup_delay_s);
  buffer_imbalance_s.merge(other.buffer_imbalance_s);
  for (std::size_t p = 0; p < other.paths.size(); ++p) {
    const std::size_t target = path_map != nullptr ? (*path_map)[p] : p;
    if (target >= paths.size()) continue;
    PathAcc& into = paths[target];
    const PathAcc& from = other.paths[p];
    into.clients += from.clients;
    into.video_sum += from.video_sum;
    into.video_sq_sum += from.video_sq_sum;
    into.throughput_sum += from.throughput_sum;
    into.throughput_sq_sum += from.throughput_sq_sum;
    into.stall_ratio_sum += from.stall_ratio_sum;
  }
}

std::uint64_t client_outcome_digest(const ClientResult& client) {
  // FNV-1a, folding each field's exact bit pattern. Client ids and path
  // indices are deliberately absent: the shard runner retires clients under
  // shard-local ids, and the digest must not see the renumbering.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_d = [&mix](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  for (const char c : client.player) mix(static_cast<unsigned char>(c));
  mix_d(client.arrival_s);
  mix(client.departed_early ? 1u : 0u);
  const SessionLog& log = client.log;
  mix(log.completed ? 1u : 0u);
  mix_d(log.startup_delay_s);
  mix_d(log.end_time_s);
  const SessionTotals& t = log.totals;
  mix(static_cast<std::uint64_t>(t.downloaded_bytes));
  mix(static_cast<std::uint64_t>(t.download_records));
  mix(static_cast<std::uint64_t>(t.abandoned_records));
  mix(static_cast<std::uint64_t>(t.wasted_bytes));
  mix(static_cast<std::uint64_t>(t.stall_events));
  mix_d(t.stall_s);
  mix_d(t.video_kbps_sum);
  mix_d(t.audio_kbps_sum);
  mix(static_cast<std::uint64_t>(t.video_chunks));
  mix(static_cast<std::uint64_t>(t.audio_chunks));
  mix(static_cast<std::uint64_t>(t.video_switches));
  mix(static_cast<std::uint64_t>(t.audio_switches));
  mix_d(t.switch_cost_kbps);
  mix_d(t.imbalance_integral);
  mix_d(t.imbalance_span_s);
  return h;
}

FleetMetrics compute_fleet_metrics(const FleetResult& result) {
  FleetMetrics metrics;

  if (result.streaming.has_value()) {
    const StreamingFleetStats& s = *result.streaming;
    metrics.clients = static_cast<int>(s.clients);
    metrics.completed = static_cast<int>(s.completed);
    metrics.departed_early = static_cast<int>(s.departed_early);
    metrics.jain_fairness_video =
        jain_from_moments(s.video_kbps_sum, s.video_kbps_sq_sum, s.clients);
    metrics.jain_fairness_throughput =
        jain_from_moments(s.throughput_sum, s.throughput_sq_sum, s.clients);
    metrics.video_kbps = s.video_kbps.summary();
    metrics.stall_ratio = s.stall_ratio.summary();
    metrics.startup_delay_s = s.startup_delay_s.summary();
    metrics.buffer_imbalance_s = s.buffer_imbalance_s.summary();
    if (s.clients > 0) metrics.mean_qoe = s.qoe_sum / static_cast<double>(s.clients);
    if (!result.paths.empty() && s.paths.size() == result.paths.size()) {
      metrics.path_groups.resize(result.paths.size());
      for (std::size_t p = 0; p < result.paths.size(); ++p) {
        FleetMetrics::PathGroup& group = metrics.path_groups[p];
        const StreamingFleetStats::PathAcc& acc = s.paths[p];
        group.name = result.paths[p].name;
        group.clients = static_cast<int>(acc.clients);
        group.jain_fairness_video =
            jain_from_moments(acc.video_sum, acc.video_sq_sum, acc.clients);
        group.jain_fairness_throughput = jain_from_moments(
            acc.throughput_sum, acc.throughput_sq_sum, acc.clients);
        if (acc.clients > 0) {
          group.mean_video_kbps = acc.video_sum / static_cast<double>(acc.clients);
          group.mean_stall_ratio =
              acc.stall_ratio_sum / static_cast<double>(acc.clients);
        }
      }
    }
    return metrics;
  }

  metrics.clients = static_cast<int>(result.clients.size());

  std::vector<double> video_kbps;
  std::vector<double> throughput;
  std::vector<double> stall_ratio;
  std::vector<double> startup;
  std::vector<double> imbalance;
  video_kbps.reserve(result.clients.size());
  double qoe_sum = 0.0;
  for (const ClientResult& client : result.clients) {
    if (client.log.completed) ++metrics.completed;
    if (client.departed_early) ++metrics.departed_early;
    const ClientScalars s = derive_scalars(client);
    video_kbps.push_back(s.video_kbps);
    throughput.push_back(s.throughput);
    stall_ratio.push_back(s.stall_ratio);
    startup.push_back(s.startup_s);
    imbalance.push_back(s.imbalance_s);
    qoe_sum += client.qoe.qoe_score;
  }

  metrics.jain_fairness_video = jain_fairness(video_kbps);
  metrics.jain_fairness_throughput = jain_fairness(throughput);

  // Per-path groups (topology runs): fairness *within* each client→edge→core
  // shard, so a congested edge shows up as its own unfair group instead of
  // being averaged away in the fleet-wide numbers.
  if (!result.paths.empty()) {
    metrics.path_groups.resize(result.paths.size());
    std::vector<std::vector<double>> group_video(result.paths.size());
    std::vector<std::vector<double>> group_throughput(result.paths.size());
    std::vector<double> group_stall_sum(result.paths.size(), 0.0);
    for (std::size_t c = 0; c < result.clients.size(); ++c) {
      const ClientResult& client = result.clients[c];
      if (client.video_path < 0) continue;
      const auto p = static_cast<std::size_t>(client.video_path);
      group_video[p].push_back(video_kbps[c]);
      group_throughput[p].push_back(throughput[c]);
      group_stall_sum[p] += stall_ratio[c];
    }
    for (std::size_t p = 0; p < result.paths.size(); ++p) {
      FleetMetrics::PathGroup& group = metrics.path_groups[p];
      group.name = result.paths[p].name;
      group.clients = static_cast<int>(group_video[p].size());
      group.jain_fairness_video = jain_fairness(group_video[p]);
      group.jain_fairness_throughput = jain_fairness(group_throughput[p]);
      if (group.clients > 0) {
        double sum = 0.0;
        for (const double v : group_video[p]) sum += v;
        group.mean_video_kbps = sum / static_cast<double>(group.clients);
        group.mean_stall_ratio = group_stall_sum[p] / static_cast<double>(group.clients);
      }
    }
  }

  metrics.video_kbps = summarize_percentiles(std::move(video_kbps));
  metrics.stall_ratio = summarize_percentiles(std::move(stall_ratio));
  metrics.startup_delay_s = summarize_percentiles(std::move(startup));
  metrics.buffer_imbalance_s = summarize_percentiles(std::move(imbalance));
  if (!result.clients.empty()) {
    metrics.mean_qoe = qoe_sum / static_cast<double>(result.clients.size());
  }
  return metrics;
}

namespace {

void fingerprint_link(std::ostringstream& out, const LinkStats& stats) {
  out << "link " << stats.name << " "
      << format("observed=%.17g busy=%.17g flow_s=%.17g offered=%.17g "
                "delivered=%.17g peak=%d\n",
                stats.observed_s, stats.busy_s, stats.flow_seconds,
                stats.offered_kbit, stats.delivered_kbit, stats.peak_flows);
}

/// All-integer CDN lines: byte-identical across engines and thread counts
/// by construction (no float accumulation order to worry about).
void fingerprint_cdns(std::ostringstream& out, const FleetResult& result) {
  for (const CdnStats& cdn : result.cdns) {
    out << "cdn " << cdn.link_name << " req=" << cdn.requests
        << " edge=" << cdn.edge_hits << " regional=" << cdn.regional_hits
        << " origin=" << cdn.origin_fetches << " uncache=" << cdn.uncacheable
        << " edge_b=" << cdn.edge_hit_bytes << " regional_b=" << cdn.regional_hit_bytes
        << " origin_b=" << cdn.origin_bytes << " evict=" << cdn.edge_evictions
        << "+" << cdn.regional_evictions << " resident=" << cdn.edge_used_bytes
        << "/" << cdn.edge_objects << "\n";
  }
}

}  // namespace

std::string fleet_fingerprint(const FleetResult& result) {
  std::ostringstream out;
  // `steps` is deliberately absent: it counts engine work units (barriers
  // vs heap events), a diagnostic that must not break cross-engine identity.
  if (result.streaming.has_value()) {
    // Streaming mode kept no per-client logs: the per-client half of the
    // fingerprint collapses to the order-invariant digest plus exact
    // counts. Every field below is bit-identical across engines, thread
    // counts and shard decompositions; float accumulations whose order
    // depends on the merge (qoe_sum, moment sums) are deliberately absent.
    const StreamingFleetStats& s = *result.streaming;
    out << "clients:" << s.clients << format(" end:%.17g", result.end_time_s)
        << " split_audio:" << (result.split_audio ? 1 : 0) << "\n";
    out << "streaming digest:" << format("%016llx",
               static_cast<unsigned long long>(result.client_digest))
        << " completed:" << s.completed << " departed:" << s.departed_early
        << "\n";
    if (!result.links.empty()) {
      for (const LinkStats& link : result.links) fingerprint_link(out, link);
    } else {
      fingerprint_link(out, result.video_link);
      if (result.split_audio) fingerprint_link(out, result.audio_link);
    }
    fingerprint_cdns(out, result);
    if (result.timeline.has_value()) out << result.timeline->fingerprint();
    return out.str();
  }
  out << "clients:" << result.clients.size()
      << format(" end:%.17g", result.end_time_s)
      << " split_audio:" << (result.split_audio ? 1 : 0) << "\n";
  for (const ClientResult& client : result.clients) {
    const SessionLog& log = client.log;
    out << "client " << client.id << " " << client.player
        << format(" arrival=%.17g", client.arrival_s)
        << " departed=" << (client.departed_early ? 1 : 0)
        << " completed=" << (log.completed ? 1 : 0)
        << format(" startup=%.17g end=%.17g", log.startup_delay_s, log.end_time_s)
        << " downloads=" << log.downloads.size()
        << " bytes=" << log.total_downloaded_bytes()
        << " abandoned=" << log.abandoned.size()
        << " wasted=" << log.wasted_bytes() << " stalls=" << log.stall_count()
        << format(" stall_s=%.17g", log.total_stall_s()) << "\nvsel:";
    for (const std::string& id : log.video_selection) out << id << ";";
    out << "\nasel:";
    for (const std::string& id : log.audio_selection) out << id << ";";
    out << "\n";
  }
  // Topology runs serialize every link in declaration order; binding_s is
  // deliberately absent from fingerprint_link (like `steps`, attribution is
  // sensitive to tie-break conventions, not to behaviour). A single-link
  // topology therefore prints the exact line a plain fleet prints.
  if (!result.links.empty()) {
    for (const LinkStats& link : result.links) fingerprint_link(out, link);
  } else {
    fingerprint_link(out, result.video_link);
    if (result.split_audio) fingerprint_link(out, result.audio_link);
  }
  fingerprint_cdns(out, result);
  if (result.timeline.has_value()) out << result.timeline->fingerprint();
  return out.str();
}

std::string summarize(const FleetResult& result, const FleetMetrics& metrics) {
  std::ostringstream out;
  out << format("fleet: %d clients, %d completed, %d churned, %zu steps, end t=%.1fs\n",
                metrics.clients, metrics.completed, metrics.departed_early,
                result.steps, result.end_time_s);
  if (result.streaming.has_value()) {
    out << format(
        "  streaming metrics: percentiles sketch-approximate (±%.1f%% relative), "
        "digest %016llx\n",
        result.streaming->video_kbps.relative_error() * 100.0,
        static_cast<unsigned long long>(result.client_digest));
  }
  out << format("  jain fairness: video bitrate %.4f, throughput %.4f\n",
                metrics.jain_fairness_video, metrics.jain_fairness_throughput);
  out << format("  video kbps: p50=%.0f p90=%.0f min=%.0f max=%.0f mean=%.0f\n",
                metrics.video_kbps.p50, metrics.video_kbps.p90, metrics.video_kbps.min,
                metrics.video_kbps.max, metrics.video_kbps.mean);
  out << format("  stall ratio: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
                metrics.stall_ratio.p50, metrics.stall_ratio.p90,
                metrics.stall_ratio.p99, metrics.stall_ratio.max);
  out << format("  startup delay s: p50=%.2f p90=%.2f max=%.2f\n",
                metrics.startup_delay_s.p50, metrics.startup_delay_s.p90,
                metrics.startup_delay_s.max);
  out << format("  A/V buffer imbalance s: p50=%.2f p90=%.2f max=%.2f\n",
                metrics.buffer_imbalance_s.p50, metrics.buffer_imbalance_s.p90,
                metrics.buffer_imbalance_s.max);
  out << format("  mean QoE: %.1f\n", metrics.mean_qoe);
  const auto link_line = [&out, &result](const LinkStats& stats) {
    out << format(
        "  link %s: utilization=%.3f busy=%.3f avg_flows=%.2f peak_flows=%d",
        stats.name.c_str(), stats.utilization(), stats.busy_fraction(),
        stats.avg_flows(), stats.peak_flows);
    if (!result.links.empty() && result.end_time_s > 0.0) {
      out << format(" binding=%.3f", stats.binding_s / result.end_time_s);
    }
    out << "\n";
  };
  if (!result.links.empty()) {
    for (const LinkStats& stats : result.links) link_line(stats);
    for (const FleetMetrics::PathGroup& group : metrics.path_groups) {
      out << format(
          "  path %s: clients=%d jain_video=%.4f jain_tput=%.4f "
          "mean_kbps=%.0f stall_ratio=%.3f\n",
          group.name.c_str(), group.clients, group.jain_fairness_video,
          group.jain_fairness_throughput, group.mean_video_kbps,
          group.mean_stall_ratio);
    }
  } else {
    link_line(result.video_link);
    if (result.split_audio) link_line(result.audio_link);
  }
  for (const CdnStats& cdn : result.cdns) {
    out << format(
        "  cdn %s: hit=%.3f byte_hit=%.3f regional=%lld origin_mb=%.1f "
        "evictions=%zu resident_mb=%.1f\n",
        cdn.link_name.c_str(), cdn.hit_ratio(), cdn.byte_hit_ratio(),
        static_cast<long long>(cdn.regional_hits),
        static_cast<double>(cdn.origin_bytes) / 1e6, cdn.edge_evictions,
        static_cast<double>(cdn.edge_used_bytes) / 1e6);
  }
  return out.str();
}

}  // namespace demuxabr::fleet
