#include "fleet/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace demuxabr::fleet {
namespace {

/// Time-weighted mean |audio - video| buffer level over the session's series
/// samples (both series are sampled at the same instants by the engine).
double mean_buffer_imbalance(const SessionLog& log) {
  const auto& audio = log.audio_buffer_s.points();
  const auto& video = log.video_buffer_s.points();
  const std::size_t n = std::min(audio.size(), video.size());
  if (n < 2) return 0.0;
  double integral = 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double dt = audio[i].t - audio[i - 1].t;
    if (dt <= 0.0) continue;
    integral += std::abs(audio[i - 1].value - video[i - 1].value) * dt;
    total += dt;
  }
  return total > 0.0 ? integral / total : 0.0;
}

}  // namespace

FleetMetrics compute_fleet_metrics(const FleetResult& result) {
  FleetMetrics metrics;
  metrics.clients = static_cast<int>(result.clients.size());

  std::vector<double> video_kbps;
  std::vector<double> throughput;
  std::vector<double> stall_ratio;
  std::vector<double> startup;
  std::vector<double> imbalance;
  video_kbps.reserve(result.clients.size());
  double qoe_sum = 0.0;
  for (const ClientResult& client : result.clients) {
    if (client.log.completed) ++metrics.completed;
    if (client.departed_early) ++metrics.departed_early;
    video_kbps.push_back(client.qoe.avg_video_kbps);
    const double active_s = client.log.end_time_s - client.arrival_s;
    throughput.push_back(
        active_s > 0.0
            ? static_cast<double>(client.log.total_downloaded_bytes()) / active_s
            : 0.0);
    stall_ratio.push_back(active_s > 0.0 ? client.log.total_stall_s() / active_s : 0.0);
    startup.push_back(client.log.startup_delay_s);
    imbalance.push_back(mean_buffer_imbalance(client.log));
    qoe_sum += client.qoe.qoe_score;
  }

  metrics.jain_fairness_video = jain_fairness(video_kbps);
  metrics.jain_fairness_throughput = jain_fairness(throughput);

  // Per-path groups (topology runs): fairness *within* each client→edge→core
  // shard, so a congested edge shows up as its own unfair group instead of
  // being averaged away in the fleet-wide numbers.
  if (!result.paths.empty()) {
    metrics.path_groups.resize(result.paths.size());
    std::vector<std::vector<double>> group_video(result.paths.size());
    std::vector<std::vector<double>> group_throughput(result.paths.size());
    std::vector<double> group_stall_sum(result.paths.size(), 0.0);
    for (std::size_t c = 0; c < result.clients.size(); ++c) {
      const ClientResult& client = result.clients[c];
      if (client.video_path < 0) continue;
      const auto p = static_cast<std::size_t>(client.video_path);
      group_video[p].push_back(video_kbps[c]);
      group_throughput[p].push_back(throughput[c]);
      group_stall_sum[p] += stall_ratio[c];
    }
    for (std::size_t p = 0; p < result.paths.size(); ++p) {
      FleetMetrics::PathGroup& group = metrics.path_groups[p];
      group.name = result.paths[p].name;
      group.clients = static_cast<int>(group_video[p].size());
      group.jain_fairness_video = jain_fairness(group_video[p]);
      group.jain_fairness_throughput = jain_fairness(group_throughput[p]);
      if (group.clients > 0) {
        double sum = 0.0;
        for (const double v : group_video[p]) sum += v;
        group.mean_video_kbps = sum / static_cast<double>(group.clients);
        group.mean_stall_ratio = group_stall_sum[p] / static_cast<double>(group.clients);
      }
    }
  }

  metrics.video_kbps = summarize_percentiles(std::move(video_kbps));
  metrics.stall_ratio = summarize_percentiles(std::move(stall_ratio));
  metrics.startup_delay_s = summarize_percentiles(std::move(startup));
  metrics.buffer_imbalance_s = summarize_percentiles(std::move(imbalance));
  if (!result.clients.empty()) {
    metrics.mean_qoe = qoe_sum / static_cast<double>(result.clients.size());
  }
  return metrics;
}

namespace {

void fingerprint_link(std::ostringstream& out, const LinkStats& stats) {
  out << "link " << stats.name << " "
      << format("observed=%.17g busy=%.17g flow_s=%.17g offered=%.17g "
                "delivered=%.17g peak=%d\n",
                stats.observed_s, stats.busy_s, stats.flow_seconds,
                stats.offered_kbit, stats.delivered_kbit, stats.peak_flows);
}

}  // namespace

std::string fleet_fingerprint(const FleetResult& result) {
  std::ostringstream out;
  // `steps` is deliberately absent: it counts engine work units (barriers
  // vs heap events), a diagnostic that must not break cross-engine identity.
  out << "clients:" << result.clients.size()
      << format(" end:%.17g", result.end_time_s)
      << " split_audio:" << (result.split_audio ? 1 : 0) << "\n";
  for (const ClientResult& client : result.clients) {
    const SessionLog& log = client.log;
    out << "client " << client.id << " " << client.player
        << format(" arrival=%.17g", client.arrival_s)
        << " departed=" << (client.departed_early ? 1 : 0)
        << " completed=" << (log.completed ? 1 : 0)
        << format(" startup=%.17g end=%.17g", log.startup_delay_s, log.end_time_s)
        << " downloads=" << log.downloads.size()
        << " bytes=" << log.total_downloaded_bytes()
        << " abandoned=" << log.abandoned.size()
        << " wasted=" << log.wasted_bytes() << " stalls=" << log.stall_count()
        << format(" stall_s=%.17g", log.total_stall_s()) << "\nvsel:";
    for (const std::string& id : log.video_selection) out << id << ";";
    out << "\nasel:";
    for (const std::string& id : log.audio_selection) out << id << ";";
    out << "\n";
  }
  // Topology runs serialize every link in declaration order; binding_s is
  // deliberately absent from fingerprint_link (like `steps`, attribution is
  // sensitive to tie-break conventions, not to behaviour). A single-link
  // topology therefore prints the exact line a plain fleet prints.
  if (!result.links.empty()) {
    for (const LinkStats& link : result.links) fingerprint_link(out, link);
  } else {
    fingerprint_link(out, result.video_link);
    if (result.split_audio) fingerprint_link(out, result.audio_link);
  }
  return out.str();
}

std::string summarize(const FleetResult& result, const FleetMetrics& metrics) {
  std::ostringstream out;
  out << format("fleet: %d clients, %d completed, %d churned, %zu steps, end t=%.1fs\n",
                metrics.clients, metrics.completed, metrics.departed_early,
                result.steps, result.end_time_s);
  out << format("  jain fairness: video bitrate %.4f, throughput %.4f\n",
                metrics.jain_fairness_video, metrics.jain_fairness_throughput);
  out << format("  video kbps: p50=%.0f p90=%.0f min=%.0f max=%.0f mean=%.0f\n",
                metrics.video_kbps.p50, metrics.video_kbps.p90, metrics.video_kbps.min,
                metrics.video_kbps.max, metrics.video_kbps.mean);
  out << format("  stall ratio: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
                metrics.stall_ratio.p50, metrics.stall_ratio.p90,
                metrics.stall_ratio.p99, metrics.stall_ratio.max);
  out << format("  startup delay s: p50=%.2f p90=%.2f max=%.2f\n",
                metrics.startup_delay_s.p50, metrics.startup_delay_s.p90,
                metrics.startup_delay_s.max);
  out << format("  A/V buffer imbalance s: p50=%.2f p90=%.2f max=%.2f\n",
                metrics.buffer_imbalance_s.p50, metrics.buffer_imbalance_s.p90,
                metrics.buffer_imbalance_s.max);
  out << format("  mean QoE: %.1f\n", metrics.mean_qoe);
  const auto link_line = [&out, &result](const LinkStats& stats) {
    out << format(
        "  link %s: utilization=%.3f busy=%.3f avg_flows=%.2f peak_flows=%d",
        stats.name.c_str(), stats.utilization(), stats.busy_fraction(),
        stats.avg_flows(), stats.peak_flows);
    if (!result.links.empty() && result.end_time_s > 0.0) {
      out << format(" binding=%.3f", stats.binding_s / result.end_time_s);
    }
    out << "\n";
  };
  if (!result.links.empty()) {
    for (const LinkStats& stats : result.links) link_line(stats);
    for (const FleetMetrics::PathGroup& group : metrics.path_groups) {
      out << format(
          "  path %s: clients=%d jain_video=%.4f jain_tput=%.4f "
          "mean_kbps=%.0f stall_ratio=%.3f\n",
          group.name.c_str(), group.clients, group.jain_fairness_video,
          group.jain_fairness_throughput, group.mean_video_kbps,
          group.mean_stall_ratio);
    }
  } else {
    link_line(result.video_link);
    if (result.split_audio) link_line(result.audio_link);
  }
  return out.str();
}

}  // namespace demuxabr::fleet
