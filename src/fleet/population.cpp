#include "fleet/population.h"

#include <cassert>

#include "util/rng.h"

namespace demuxabr::fleet {

std::vector<ClientPlan> plan_population(const FleetConfig& config) {
  assert(!config.players.empty() && "FleetConfig::players must be non-empty");
  Rng rng(config.seed);

  std::vector<double> weights;
  weights.reserve(config.players.size());
  for (const PlayerShare& share : config.players) weights.push_back(share.weight);

  std::vector<ClientPlan> plans;
  plans.reserve(static_cast<std::size_t>(config.client_count));
  double arrival = 0.0;
  for (int id = 0; id < config.client_count; ++id) {
    ClientPlan plan;
    plan.id = id;
    switch (config.arrivals) {
      case ArrivalProcess::kSimultaneous:
        break;
      case ArrivalProcess::kDeterministic:
        arrival = static_cast<double>(id) * config.arrival_interval_s;
        break;
      case ArrivalProcess::kPoisson:
        if (id > 0) arrival += rng.exponential(config.arrival_rate_per_s);
        break;
    }
    plan.arrival_s = arrival;
    plan.player_index =
        config.players.size() > 1 ? rng.weighted_index(weights) : 0;
    plan.player_label = config.players[plan.player_index].label;
    if (config.churn.leave_probability > 0.0 &&
        rng.bernoulli(config.churn.leave_probability)) {
      const double watch =
          rng.uniform(config.churn.min_watch_s, config.churn.max_watch_s);
      plan.leave_at_s = plan.arrival_s + watch;
    }
    plans.push_back(std::move(plan));
  }
  // Arrivals are generated non-decreasing by construction for every process,
  // so the id order already is arrival order.
  return plans;
}

}  // namespace demuxabr::fleet
