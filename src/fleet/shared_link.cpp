#include "fleet/shared_link.h"

#include <utility>

namespace demuxabr::fleet {

SharedLink::SharedLink(BandwidthTrace trace, std::string name)
    : link_(std::make_shared<Link>(std::move(trace))) {
  stats_.name = std::move(name);
}

void SharedLink::observe(double t0, double t1) {
  if (t1 <= t0) return;
  const double dt = t1 - t0;
  const int flows = link_->active_flows();
  const double offered = link_->trace().average_kbps(t0, t1) * dt;
  stats_.observed_s += dt;
  stats_.flow_seconds += static_cast<double>(flows) * dt;
  stats_.offered_kbit += offered;
  if (flows > 0) {
    stats_.busy_s += dt;
    stats_.delivered_kbit += offered;
  }
}

LinkStats SharedLink::stats() const {
  LinkStats stats = stats_;
  stats.peak_flows = link_->peak_flows();
  stats.residual_flows = link_->active_flows();
  return stats;
}

}  // namespace demuxabr::fleet
