#include "fleet/shared_link.h"

#include <utility>

namespace demuxabr::fleet {

SharedLink::SharedLink(BandwidthTrace trace, std::string name,
                       MonotonicArena* arena)
    : link_(std::make_shared<Link>(std::move(trace), arena)),
      name_(std::move(name)) {}

LinkStats SharedLink::stats() const {
  LinkStats stats;
  stats.name = name_;
  stats.observed_s = link_->observed_s();
  stats.busy_s = link_->busy_s();
  stats.flow_seconds = link_->flow_seconds();
  stats.offered_kbit = link_->offered_kbit();
  stats.delivered_kbit = link_->delivered_kbit();
  stats.peak_flows = link_->peak_flows();
  stats.residual_flows = link_->active_flows();
  return stats;
}

}  // namespace demuxabr::fleet
