// Multi-link fleet topologies: client → edge → core paths over a DAG of
// named bottleneck links (ROADMAP "sharded multi-link topologies").
//
// Each flow traverses a *path* of links and its instantaneous rate is the
// minimum over the per-link processor-sharing fair shares
//
//     rate_P(t) = min over links l in P of  capacity_l(t) / max(1, N_l(t))
//
// where N_l counts flows on *every* path through l. The hop attaining the
// minimum is the path's binding constraint; it can move when any sibling
// path's population changes. Service is accounted exactly like net/link.h:
// each path keeps a virtual-time integral V_P(t) of its min-share rate,
// advanced lazily at population changes of the *affected set* (the paths
// whose rate can change: those sharing a link with the mutating path), so a
// flow's bytes are an integral difference and the event-heap engine stays
// O(log N + affected-topology-size) per event. Completion targets are
// values of V_P — invariant under population and capacity changes — keyed
// per path; a binding-constraint move re-keys them lazily through the
// path's epoch bump (fleet/event_heap.h).
//
// Hot-path layout (DESIGN.md §12): every per-path hop list, per-link rider
// set, and affected set is flattened at construction into contiguous
// CSR-style uint32 index arrays, so the advancement walks touch dense spans
// instead of chasing vector-of-vector indirections; the PathChannels
// themselves live in one contiguous vector. Iteration order and arithmetic
// are unchanged expression-for-expression, so results stay byte-identical
// to the nested layout.
//
// A 1-hop path degenerates to net/link.h arithmetic expression-for-
// expression, so a single-link topology reproduces the plain fleet
// byte-for-byte (tests/test_fleet_topology.cpp pins this).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/shared_link.h"
#include "net/bandwidth_trace.h"
#include "net/channel.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/indexed_min_heap.h"

namespace demuxabr::obs {
class TimelineShard;  // obs/telemetry.h
}

namespace demuxabr::fleet {

/// A CDN cache co-located with a topology link (fleet/cdn_fleet.h). A
/// request whose object is resident in the edge tier rides only the hop
/// prefix of its path up to this link; misses ride the full path to the
/// origin and fill the cache at flow completion.
struct CacheSpec {
  /// Edge LRU capacity in bytes; 0 = unbounded.
  std::int64_t capacity_bytes = 0;
  /// Optional second tier with CdnChain semantics (a regional cache close
  /// to the origin: hits save origin egress but still ride the full path).
  /// Negative = no regional tier; 0 = unbounded regional.
  std::int64_t regional_capacity_bytes = -1;

  [[nodiscard]] bool has_regional() const { return regional_capacity_bytes >= 0; }
};

/// One named bottleneck of the topology.
struct LinkSpec {
  std::string name;
  BandwidthTrace trace;
  /// Observability trace track; 0 = auto (obs::kLinkTrackBase + link
  /// index). The shard runner pins sub-topology links to their *global*
  /// track ids so traces stay attributable after partitioning.
  std::uint32_t trace_track = 0;
  /// CDN cache at this link. At most one hop of any path may carry a cache
  /// (validate() enforces it). Copied wholesale by the shard runner, so a
  /// cache and every path through it stay inside one connected component.
  std::optional<CacheSpec> cache;
};

/// One route through the topology: an ordered list of link indices
/// (client-side first, core last — order only matters for reporting).
struct PathSpec {
  std::string name;
  std::vector<std::size_t> hops;
};

/// Declarative topology + client→path assignment. Build with the add_*
/// helpers (they return indices) or one of the canned constructors, then
/// hand to FleetConfig::topology.
struct TopologySpec {
  std::vector<LinkSpec> links;
  std::vector<PathSpec> paths;

  /// Video path per client: client `id` rides
  /// `video_assignment[id % video_assignment.size()]`. Empty = round-robin
  /// over all paths (`id % paths.size()`).
  std::vector<std::size_t> video_assignment;
  /// Audio path per client, same indexing. Empty = audio rides the
  /// client's video path (the common shared-route case).
  std::vector<std::size_t> audio_assignment;

  std::size_t add_link(std::string name, BandwidthTrace trace);
  std::size_t add_path(std::string name, std::vector<std::size_t> hops);

  /// Degenerate 1-link / 1-path topology — byte-identical to the plain
  /// single-bottleneck fleet (the default name matches FleetScheduler's).
  static TopologySpec single(BandwidthTrace trace, std::string name = "bottleneck");

  /// Client → edge → core shards: `edge_count` regions, each with its own
  /// access + edge link, all funnelling into one core uplink. Path i =
  /// [access-i, edge-i, core]; clients round-robin unless an assignment
  /// is set (see block_assignment).
  static TopologySpec sharded(int edge_count, const BandwidthTrace& access,
                              const BandwidthTrace& edge, const BandwidthTrace& core);

  /// Assignment vector placing `clients_per_path` consecutive client ids on
  /// each path: [0,0,...,1,1,...]. Combine with sharded() for a
  /// clients-per-edge layout.
  static std::vector<std::size_t> block_assignment(std::size_t path_count,
                                                   std::size_t clients_per_path);

  /// Empty string when well-formed; otherwise a description of the first
  /// problem (no links, empty/out-of-range/duplicate hops, bad assignment,
  /// a path traversing more than one cached link).
  [[nodiscard]] std::string validate() const;
};

/// Per-path closing stats (fleet reporting + invariant tests).
struct PathSummary {
  std::string name;
  std::vector<std::string> hop_names;
  /// Per-hop time [s] this hop was the path's binding constraint while the
  /// path was busy (ties go to the earliest hop). Sums to the path's busy
  /// time — the bottleneck-attribution table of EXPERIMENTS.md.
  std::vector<double> binding_s;
  int peak_flows = 0;
  int residual_flows = 0;  ///< flows still registered at finalize (0 = clean)
  double service_kbit = 0.0;  ///< final per-flow virtual service V_P
};

class Topology;

/// Cache-routing handle of one spec path (fleet/cdn_fleet.h): the cached
/// hop's link index plus the Channel a cache hit rides — the derived
/// "<path>:hit" channel over the hop prefix ending at the cached link, or
/// the path's own channel when the cached link is its last hop.
struct PathCacheRoute {
  std::size_t link = 0;
  Channel* hit_channel = nullptr;
};

/// The Channel a session rides in a topology fleet: one route of links.
/// All state mutates only at flow-population changes of the affected set,
/// so every derived quantity is a pure function of identical state in both
/// fleet engines (same bit-identity argument as net/link.h). Hop lists and
/// per-hop binding-time accumulators live in the owning Topology's CSR
/// arrays; the channel itself carries only scalar hot state.
class PathChannel final : public Channel {
 public:
  double add_flow(double now) override;
  void remove_flow(double now) override;
  [[nodiscard]] int active_flows() const override { return active_flows_; }
  [[nodiscard]] std::uint64_t epoch() const override { return epoch_; }
  [[nodiscard]] double service_at(double t) const override;
  [[nodiscard]] double time_when_service_reaches(double v_target) const override;

  void register_completion(std::uint32_t token, double v_target_kbit) override {
    completions_.update(token, v_target_kbit);
  }
  void unregister_completion(std::uint32_t token) override {
    completions_.erase(token);
  }
  [[nodiscard]] bool has_completions() const override { return !completions_.empty(); }
  [[nodiscard]] std::uint32_t earliest_completion_token() const override {
    return completions_.top().id;
  }
  [[nodiscard]] double earliest_completion_time() const override {
    if (completions_.empty()) return std::numeric_limits<double>::infinity();
    return time_when_service_reaches(completions_.top().key);
  }

  /// Minimum hop capacity — the most one unopposed flow could receive.
  [[nodiscard]] double capacity_kbps(double t) const override;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int peak_flows() const { return peak_flows_; }

  PathChannel(PathChannel&&) = default;
  PathChannel& operator=(PathChannel&&) = default;

 private:
  friend class Topology;
  PathChannel() = default;

  Topology* topo_ = nullptr;
  std::uint32_t index_ = 0;

  int active_flows_ = 0;
  int peak_flows_ = 0;
  std::uint64_t epoch_ = 0;

  double clock_s_ = 0.0;       ///< time up to which V_P is advanced
  double service_kbit_ = 0.0;  ///< V_P(clock_s_): per-flow min-share integral

  std::string name_;
  /// v_target [kbit] per in-flight flow token; backed by the owning
  /// Topology's arena when one was supplied.
  BasicIndexedMinHeap<ArenaAllocator<HeapEntry>> completions_;
};

/// Runtime topology: owns the link nodes and path channels, performs the
/// affected-set lazy advancement, and closes the per-link books
/// (LinkStats) at the end of a run. Built once per fleet run; paths are
/// handed to sessions as non-owning Channel pointers (the Topology must
/// outlive every session, which FleetScheduler guarantees).
class Topology {
 public:
  /// `spec` must validate() clean (asserted). `arena` (optional, must
  /// outlive the topology) backs every channel's completion registry —
  /// FleetScheduler passes its per-shard arena so drain-loop registry
  /// growth never hits the heap.
  explicit Topology(TopologySpec spec, MonotonicArena* arena = nullptr);

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  /// Spec paths only — the routes clients are assigned to. Derived hit
  /// channels (cache-aware routing) live above this index; see
  /// channel_count().
  [[nodiscard]] std::size_t path_count() const { return spec_path_count_; }
  /// All channels: spec paths first, then the derived "<path>:hit" prefix
  /// channels cache hits ride. The event-heap engine watches completions on
  /// every channel, so it enumerates up to this count.
  [[nodiscard]] std::size_t channel_count() const { return paths_.size(); }
  [[nodiscard]] const std::string& link_name(std::size_t l) const {
    return links_[l].name;
  }

  /// Non-owning handle to channel `p` (aliasing shared_ptr; lifetime is the
  /// Topology's). Wire into a session's Network. Valid for any index below
  /// channel_count(); sessions' default carriers use spec-path indices.
  [[nodiscard]] std::shared_ptr<Channel> path_channel(std::size_t p);

  /// True when any link carries a CacheSpec.
  [[nodiscard]] bool has_caches() const { return has_caches_; }
  /// Cache route of spec path `p` (empty when no hop is cached).
  [[nodiscard]] const std::optional<PathCacheRoute>& cache_route(std::size_t p) const {
    return cache_routes_[p];
  }

  [[nodiscard]] std::size_t video_path_for(int client_id) const;
  [[nodiscard]] std::size_t audio_path_for(int client_id) const;
  /// True when any client's audio rides a different path than its video.
  [[nodiscard]] bool split_audio() const { return !audio_assignment_.empty(); }

  /// Advance every path's and link's integrals to `t` (idle tails
  /// included). Call once at the end of a run, before stats.
  void finalize(double t);

  /// Per-link closing stats, link-declaration order. binding_s aggregates
  /// the binding-constraint time of every path this link bottlenecked.
  [[nodiscard]] std::vector<LinkStats> link_stats() const;
  /// Spec paths only (derived hit channels report through link_stats and
  /// the fleet's CdnStats).
  [[nodiscard]] std::vector<PathSummary> path_stats() const;

  /// Name one obs trace track per link (obs::kLinkTrackBase + index).
  void name_trace_tracks() const;

  // --- Engine dirty-channel tracking (fleet/scheduler.cpp). ---
  //
  // Every population change bumps the epoch of each affected channel and
  // records its index here (deduplicated) — so the event-heap engine can
  // re-sync exactly the channels whose completion keys may have moved,
  // instead of sweeping every channel after every event.

  /// Channels whose epochs moved since the last clear_dirty(), in
  /// first-dirtied order. Order is irrelevant to consumers: syncing writes
  /// absolute keys, so any re-sync order yields the same heap state.
  [[nodiscard]] const std::vector<std::uint32_t>& dirty_channels() const {
    return dirty_channels_;
  }
  void clear_dirty() {
    for (const std::uint32_t p : dirty_channels_) channel_dirty_[p] = 0;
    dirty_channels_.clear();
  }

  // --- Invariant-test hooks (tests/test_fleet_topology.cpp). ---

  /// Per-link virtual service V_l = ∫ cap_l / N_l while busy. Any path
  /// through l satisfies ΔV_P <= ΔV_l over every interval, hence
  /// V_P(end) <= V_l(end) — the min-share invariant.
  [[nodiscard]] double link_service_kbit(std::size_t l) const {
    return links_[l].service_kbit;
  }
  [[nodiscard]] double path_service_kbit(std::size_t p) const {
    return paths_[p].service_kbit_;
  }
  /// Current min-share rate of path `p` at `t` >= the last mutation time.
  [[nodiscard]] double path_rate_at(std::size_t p, double t) const;
  /// Current fair share of link `l` at `t` (capacity when idle).
  [[nodiscard]] double link_fair_share_at(std::size_t l, double t) const;
  [[nodiscard]] int link_active_flows(std::size_t l) const {
    return links_[l].active_flows;
  }

  /// Wire the time-binned telemetry sink (obs/telemetry.h): every lazily
  /// advanced link-accounting segment is also reported as that link's
  /// series, indexed by spec link order. Null (default) costs one branch
  /// per segment.
  void set_telemetry(obs::TimelineShard* telemetry) { telemetry_ = telemetry; }

 private:
  friend class PathChannel;

  struct LinkNode {
    std::string name;
    BandwidthTrace trace;
    int active_flows = 0;
    int peak_flows = 0;
    std::uint32_t trace_track = 0;

    double clock_s = 0.0;
    double service_kbit = 0.0;  ///< V_l: per-flow fair-share integral of this link
    double busy_s = 0.0;
    double flow_seconds = 0.0;
    double offered_kbit = 0.0;
    double delivered_kbit = 0.0;

    /// Every traversing path is 1-hop: this link alone bottlenecks them,
    /// so delivered == offered while busy, exactly as net/link.h accounts
    /// it (keeps the degenerate topology bit-identical to a plain Link).
    bool saturating = false;
  };

  /// The one mutation point: path `p` gains (+1) or loses (-1) a flow at
  /// `now`. Advances every affected path's V and every affected link's
  /// books to `now` with the OLD populations, then mutates counts and
  /// bumps every affected path's epoch — preserving the invariant that a
  /// path's clock moves iff its epoch does, which is what keeps cached
  /// event-heap keys exact (never stale by a partitioning difference).
  void population_change(std::size_t p, int delta, double now);

  void advance_path(std::size_t p, double now);
  void advance_link(std::size_t l, double now);

  // CSR span accessors (index arrays built once at construction).
  [[nodiscard]] const std::uint32_t* hops_of(std::size_t p) const {
    return hop_csr_.data() + hop_offsets_[p];
  }
  [[nodiscard]] std::size_t hop_count_of(std::size_t p) const {
    return hop_offsets_[p + 1] - hop_offsets_[p];
  }

  std::vector<std::size_t> video_assignment_;
  std::vector<std::size_t> audio_assignment_;
  obs::TimelineShard* telemetry_ = nullptr;
  std::vector<LinkNode> links_;
  /// Spec paths [0, spec_path_count_), then derived hit channels. Sized
  /// once at construction (sessions hold raw Channel pointers into it).
  std::vector<PathChannel> paths_;
  std::size_t spec_path_count_ = 0;
  bool has_caches_ = false;
  /// Per spec path: its cached hop + hit channel, if any.
  std::vector<std::optional<PathCacheRoute>> cache_routes_;

  // --- Flat CSR index arrays (DESIGN.md §12). All spans are stored in the
  // same order the nested vectors historically held, so every walk visits
  // entities in the identical sequence. ---

  /// Channel p's hop link indices: hop_csr_[hop_offsets_[p] ..
  /// hop_offsets_[p+1]).
  std::vector<std::uint32_t> hop_csr_;
  std::vector<std::uint32_t> hop_offsets_;
  /// Per (channel, hop) binding-constraint time, same offsets as hop_csr_.
  std::vector<double> binding_csr_;
  /// Link l's traversing channels: link_paths_csr_[link_paths_offsets_[l]..).
  std::vector<std::uint32_t> link_paths_csr_;
  std::vector<std::uint32_t> link_paths_offsets_;
  /// Link l's related links (hops of its traversing channels, incl. self,
  /// sorted): rel_csr_[rel_offsets_[l]..).
  std::vector<std::uint32_t> rel_csr_;
  std::vector<std::uint32_t> rel_offsets_;
  /// Channel p's affected channels (sorted): aff_paths_csr_[...p].
  std::vector<std::uint32_t> aff_paths_csr_;
  std::vector<std::uint32_t> aff_paths_offsets_;
  /// Channel p's affected links (sorted): aff_links_csr_[...p].
  std::vector<std::uint32_t> aff_links_csr_;
  std::vector<std::uint32_t> aff_links_offsets_;

  /// Dirty-channel accumulator: indices appended at epoch bump, flag array
  /// dedupes.
  std::vector<std::uint32_t> dirty_channels_;
  std::vector<std::uint8_t> channel_dirty_;
};

}  // namespace demuxabr::fleet
