// SharedLink: a named bottleneck Link carried by many sessions at once.
// Utilization is accounted inside the Link itself, integrated lazily at
// flow-population changes (net/link.h) — the same partition both fleet
// engines produce, so the stats below are engine-independent. This wrapper
// just names the link and snapshots its books.
#pragma once

#include <memory>
#include <string>

#include "net/link.h"

namespace demuxabr::fleet {

/// Accumulated utilization of one shared link over a fleet run.
struct LinkStats {
  std::string name;
  double observed_s = 0.0;      ///< total wall time observed
  double busy_s = 0.0;          ///< time with >= 1 active flow
  double flow_seconds = 0.0;    ///< integral of active_flows over time
  double offered_kbit = 0.0;    ///< integral of capacity (what the pipe could carry)
  double delivered_kbit = 0.0;  ///< integral of capacity while busy (what it did carry)
  int peak_flows = 0;           ///< max concurrent flows across all sessions
  /// Flows still registered when stats were taken. Zero after a clean fleet
  /// run — anything else means a session leaked a processor-sharing slot.
  int residual_flows = 0;
  /// Topology runs only: total time [s] this link was some traversing
  /// path's binding constraint (bottleneck attribution, fleet/topology.h).
  /// Always 0 for a plain single-link fleet; excluded from fingerprints.
  double binding_s = 0.0;

  /// Fraction of offered capacity actually used (processor sharing always
  /// saturates a busy link, so delivered == offered while busy).
  [[nodiscard]] double utilization() const {
    return offered_kbit > 0.0 ? delivered_kbit / offered_kbit : 0.0;
  }
  [[nodiscard]] double busy_fraction() const {
    return observed_s > 0.0 ? busy_s / observed_s : 0.0;
  }
  [[nodiscard]] double avg_flows() const {
    return observed_s > 0.0 ? flow_seconds / observed_s : 0.0;
  }
};

/// Wraps the Link every client's Network points at.
class SharedLink {
 public:
  /// `arena` (optional, must outlive the link) backs the Link's completion
  /// registry — see Link's constructor.
  explicit SharedLink(BandwidthTrace trace, std::string name = "bottleneck",
                      MonotonicArena* arena = nullptr);

  /// The underlying Link; hand this to each client's Network so their flows
  /// contend (processor sharing spans sessions, not just one client's A/V).
  [[nodiscard]] const std::shared_ptr<Link>& link() const { return link_; }

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Close the books at the end of a run: advance the link's utilization
  /// integrals to `t` (idle tail included). Call once before stats().
  void finalize(double t) { link_->finalize(t); }

  [[nodiscard]] LinkStats stats() const;

 private:
  std::shared_ptr<Link> link_;
  std::string name_;
};

}  // namespace demuxabr::fleet
