// Client-population modelling for fleet simulations: who joins, when, with
// which player, and how long they stay. Everything is derived from a single
// seed through util/Rng in client-id order, so a FleetConfig maps to exactly
// one population on every platform.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/topology.h"
#include "httpsim/catalog.h"
#include "obs/telemetry.h"
#include "sim/player.h"
#include "sim/session.h"

namespace demuxabr::fleet {

/// Builds a fresh player per client; must not capture mutable shared state
/// (replications run concurrently on a ThreadPool).
using PlayerFactory = std::function<std::unique_ptr<PlayerAdapter>()>;

/// One entry of the player mix: clients draw a player proportionally to
/// `weight` (a population of 70% ExoPlayer / 30% Shaka is two shares).
struct PlayerShare {
  std::string label;
  PlayerFactory factory;
  double weight = 1.0;
};

enum class ArrivalProcess {
  kSimultaneous,   ///< everyone at t = 0 (flash crowd)
  kDeterministic,  ///< fixed spacing of arrival_interval_s
  kPoisson,        ///< seeded exponential inter-arrivals at arrival_rate_per_s
};

/// Early-abandon (churn) model: each client independently leaves with
/// `leave_probability`, after a watch duration drawn uniformly from
/// [min_watch_s, max_watch_s].
struct ChurnConfig {
  double leave_probability = 0.0;
  double min_watch_s = 30.0;
  double max_watch_s = 120.0;
};

/// Which scheduling engine drives the fleet. Both produce bit-identical
/// results (tests/test_fleet.cpp cross-validates); they differ only in cost
/// per event — O(N) for the barrier reference engine, O(log N) for the
/// event heap (DESIGN.md §7 "Engine modes").
enum class Engine {
  kBarrier,    ///< reference: global phase barriers over all active sessions
  kEventHeap,  ///< default: indexed event heap + per-link completion registry
  /// Pick per fleet size: the barrier's flat scan beats the heap's
  /// pop/re-key round-trip when there is almost nobody to scan (measured
  /// ~6.9M vs ~4.2M steps/s at 1 client), so populations at or below
  /// kAutoBarrierMaxClients run kBarrier and everything larger kEventHeap.
  /// Results are byte-identical either way, so the switch is pure policy.
  kAuto,
};

/// Largest client count Engine::kAuto serves with the barrier engine.
inline constexpr std::size_t kAutoBarrierMaxClients = 2;

/// The engine kAuto resolves to for a fleet of `clients`; identity for the
/// explicit engines. Everything downstream of FleetConfig::engine (the
/// scheduler dispatch, trace-track naming) sees only resolved values.
[[nodiscard]] inline Engine resolve_engine(Engine engine, std::size_t clients) {
  if (engine != Engine::kAuto) return engine;
  return clients <= kAutoBarrierMaxClients ? Engine::kBarrier : Engine::kEventHeap;
}

/// Streaming-metrics mode switch (DESIGN.md §10): fleets at or above
/// `client_threshold` clients drop per-session logs and aggregate into
/// mergeable sketches (fleet/metrics.h StreamingFleetStats) as clients
/// retire. Default = never.
struct StreamingMetricsConfig {
  std::size_t client_threshold = std::numeric_limits<std::size_t>::max();
  /// Relative accuracy of the percentile sketches (util/sketch.h alpha).
  double relative_error = 0.01;

  [[nodiscard]] bool enabled_for(std::size_t clients) const {
    return clients >= client_threshold;
  }
};

struct FleetConfig {
  int client_count = 2;
  std::uint64_t seed = 1;
  Engine engine = Engine::kEventHeap;

  /// Worker threads for parallel shard execution (fleet/shard.h): a
  /// multi-component topology is partitioned into causally independent
  /// shards that run concurrently and merge deterministically. 1 = today's
  /// fully serial path; 0 = ThreadPool::default_thread_count(). Results are
  /// byte-identical for every value (tests/test_fleet_shard.cpp).
  int threads = 1;

  StreamingMetricsConfig streaming;

  ArrivalProcess arrivals = ArrivalProcess::kSimultaneous;
  double arrival_interval_s = 2.0;  ///< kDeterministic spacing
  double arrival_rate_per_s = 0.5;  ///< kPoisson rate

  /// Weighted player mix; must be non-empty.
  std::vector<PlayerShare> players;

  ChurnConfig churn;

  /// Base per-client session config. `start_time_s` is overwritten with the
  /// client's arrival; `max_sim_time_s` is interpreted as the per-client
  /// simulated-time budget (the absolute cap becomes arrival + budget).
  SessionConfig session;

  /// Per-request RTT of every client's network.
  double rtt_s = 0.05;

  /// Multi-link topology (fleet/topology.h): when set, every client rides a
  /// *path* of shared links (client → edge → core) chosen by the spec's
  /// assignment vectors, and the scheduler's bottleneck/audio traces are
  /// ignored. Unset = today's single shared bottleneck. A
  /// TopologySpec::single() topology is byte-identical to unset.
  std::optional<TopologySpec> topology;

  /// Cache-aware fleets (fleet/cdn_fleet.h): configuration of the CDN nodes
  /// declared via CacheSpec-bearing topology links. Ignored when no link
  /// carries a cache.
  struct CdnConfig {
    /// Storage mode of the origin catalog (the paper's §1 axis): demuxed
    /// audio/video objects vs muxed A×V combination objects.
    StorageMode storage = StorageMode::kDemuxed;
    /// Pre-built origin catalog, shared read-only across shards. Null = the
    /// scheduler builds one from its Content in `storage` mode (the shard
    /// runner builds it once and injects it into every shard).
    std::shared_ptr<const ObjectCatalog> catalog;
  };
  CdnConfig cdn;

  /// Collect per-phase wall-clock timings of the engine loop into
  /// FleetResult::profile (obs/profile.h). Purely observational — results
  /// are bit-identical with it on or off; leave off for perf baselines
  /// (clock reads per phase are not free).
  bool profile = false;

  /// Time-binned fleet telemetry (obs/telemetry.h): when enabled, the run
  /// accumulates per-bin fleet/link/CDN health series into
  /// FleetResult::timeline with O(shards × bins) memory. Purely
  /// observational — simulation results are bit-identical with it on or
  /// off, and the timeline itself is byte-identical across engines and
  /// thread counts.
  obs::TelemetryConfig telemetry;
};

/// One planned client, fully determined before the simulation starts.
struct ClientPlan {
  int id = 0;
  double arrival_s = 0.0;
  std::size_t player_index = 0;  ///< into FleetConfig::players
  std::string player_label;
  /// Absolute wall time at which the client abandons the session;
  /// +infinity when the client stays to the end.
  double leave_at_s = std::numeric_limits<double>::infinity();
};

/// Expand a FleetConfig into its population, sorted by arrival time (ties
/// keep id order). Deterministic in config.seed.
std::vector<ClientPlan> plan_population(const FleetConfig& config);

}  // namespace demuxabr::fleet
