#include "manifest/xml.h"

#include <cctype>
#include <sstream>

#include "util/strings.h"

namespace demuxabr::xml {

Element& Element::set_attribute(const std::string& key, const std::string& value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = value;
      return *this;
    }
  }
  attributes_.emplace_back(key, value);
  return *this;
}

Element& Element::set_attribute(const std::string& key, std::int64_t value) {
  return set_attribute(key, format("%lld", static_cast<long long>(value)));
}

Element& Element::set_attribute(const std::string& key, double value) {
  std::string s = format("%.6f", value);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return set_attribute(key, s);
}

const std::string* Element::attribute(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Element& Element::add_child(const std::string& name) {
  children_.push_back(std::make_unique<Element>(name));
  return *children_.back();
}

Element& Element::add_child(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::first_child(const std::string& name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(const std::string& name) const {
  std::vector<const Element*> out;
  for (const auto& child : children_) {
    if (child->name() == name) out.push_back(child.get());
  }
  return out;
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Element::to_string(int indent) const {
  std::ostringstream out;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out << pad << '<' << name_;
  for (const auto& [k, v] : attributes_) {
    out << ' ' << k << "=\"" << escape(v) << '"';
  }
  if (children_.empty() && text_.empty()) {
    out << "/>\n";
    return out.str();
  }
  out << '>';
  if (!text_.empty()) out << escape(text_);
  if (!children_.empty()) {
    out << '\n';
    for (const auto& child : children_) out << child->to_string(indent + 1);
    out << pad;
  }
  out << "</" << name_ << ">\n";
  return out.str();
}

std::string serialize_document(const Element& root) {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root.to_string();
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<std::unique_ptr<Element>> parse_document() {
    skip_prolog();
    auto root = parse_element();
    if (!root.ok()) return Error{root.error()};
    skip_whitespace_and_comments();
    if (pos_ != text_.size()) return Error{err("trailing content after root element")};
    return std::move(root).take();
  }

 private:
  std::string err(const std::string& message) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return format("xml parse error at line %zu: %s", line, message.c_str());
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char get() { return text_[pos_++]; }

  bool consume(std::string_view token) {
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void skip_whitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  void skip_whitespace_and_comments() {
    for (;;) {
      skip_whitespace();
      if (consume("<!--")) {
        const std::size_t end = text_.find("-->", pos_);
        pos_ = end == std::string::npos ? text_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  void skip_prolog() {
    skip_whitespace();
    if (consume("<?xml")) {
      const std::size_t end = text_.find("?>", pos_);
      pos_ = end == std::string::npos ? text_.size() : end + 2;
    }
    skip_whitespace_and_comments();
    if (consume("<!DOCTYPE")) {
      const std::size_t end = text_.find('>', pos_);
      pos_ = end == std::string::npos ? text_.size() : end + 1;
    }
    skip_whitespace_and_comments();
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == ':' || c == '_' ||
           c == '-' || c == '.';
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  static std::string unescape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] != '&') {
        out += text[i];
        continue;
      }
      const std::string_view rest = text.substr(i);
      auto try_entity = [&](std::string_view entity, char replacement) {
        if (rest.substr(0, entity.size()) == entity) {
          out += replacement;
          i += entity.size() - 1;
          return true;
        }
        return false;
      };
      if (try_entity("&amp;", '&') || try_entity("&lt;", '<') || try_entity("&gt;", '>') ||
          try_entity("&quot;", '"') || try_entity("&apos;", '\'')) {
        continue;
      }
      out += '&';
    }
    return out;
  }

  Result<std::unique_ptr<Element>> parse_element() {
    skip_whitespace_and_comments();
    if (eof() || peek() != '<') return Error{err("expected '<'")};
    ++pos_;
    std::string name = parse_name();
    if (name.empty()) return Error{err("expected element name")};
    auto element = std::make_unique<Element>(name);

    // Attributes.
    for (;;) {
      skip_whitespace();
      if (eof()) return Error{err("unexpected end in element " + name)};
      if (peek() == '/' || peek() == '>') break;
      std::string key = parse_name();
      if (key.empty()) return Error{err("expected attribute name in <" + name + ">")};
      skip_whitespace();
      if (eof() || get() != '=') return Error{err("expected '=' after attribute " + key)};
      skip_whitespace();
      if (eof()) return Error{err("unexpected end after '='")};
      const char quote = get();
      if (quote != '"' && quote != '\'') return Error{err("expected quoted attribute value")};
      const std::size_t start = pos_;
      while (!eof() && peek() != quote) ++pos_;
      if (eof()) return Error{err("unterminated attribute value")};
      element->set_attribute(key, unescape(text_.substr(start, pos_ - start)));
      ++pos_;  // closing quote
    }

    if (consume("/>")) return element;
    if (!consume(">")) return Error{err("expected '>' closing tag of " + name)};

    // Content: text and child elements until </name>.
    std::string text;
    for (;;) {
      skip_whitespace_and_comments();
      if (eof()) return Error{err("unexpected end inside element " + name)};
      if (consume("</")) {
        std::string closing = parse_name();
        skip_whitespace();
        if (!consume(">")) return Error{err("malformed closing tag")};
        if (closing != name) {
          return Error{err("mismatched closing tag: " + closing + " vs " + name)};
        }
        break;
      }
      if (peek() == '<') {
        auto child = parse_element();
        if (!child.ok()) return Error{child.error()};
        element->add_child(std::move(child).take());
        continue;
      }
      const std::size_t start = pos_;
      while (!eof() && peek() != '<') ++pos_;
      text += unescape(text_.substr(start, pos_ - start));
    }
    element->set_text(std::string(trim(text)));
    return element;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Element>> parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace demuxabr::xml
