#include "manifest/dash_mpd.h"

#include <cmath>

#include "manifest/xml.h"
#include "util/strings.h"

namespace demuxabr {

const MpdAdaptationSet* MpdDocument::adaptation_set(const std::string& content_type) const {
  for (const MpdAdaptationSet& set : adaptation_sets) {
    if (set.content_type == content_type) return &set;
  }
  return nullptr;
}

std::string to_iso8601_duration(double seconds) {
  const auto whole_minutes = static_cast<std::int64_t>(seconds / 60.0);
  const double rest = seconds - static_cast<double>(whole_minutes) * 60.0;
  if (whole_minutes > 0) return format("PT%lldM%.3fS", static_cast<long long>(whole_minutes), rest);
  return format("PT%.3fS", rest);
}

std::optional<double> parse_iso8601_duration(const std::string& text) {
  // Accepts PT[nH][nM][n(.n)S].
  if (!starts_with(text, "PT")) return std::nullopt;
  double total = 0.0;
  std::string number;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    if ((c >= '0' && c <= '9') || c == '.') {
      number += c;
      continue;
    }
    const auto value = parse_double(number);
    if (!value.has_value()) return std::nullopt;
    number.clear();
    switch (c) {
      case 'H': total += *value * 3600.0; break;
      case 'M': total += *value * 60.0; break;
      case 'S': total += *value; break;
      default: return std::nullopt;
    }
  }
  if (!number.empty()) return std::nullopt;  // trailing digits without unit
  return total;
}

std::string serialize_mpd(const MpdDocument& mpd) {
  xml::Element root("MPD");
  root.set_attribute("xmlns", "urn:mpeg:dash:schema:mpd:2011");
  root.set_attribute("type", "static");
  root.set_attribute("profiles", "urn:mpeg:dash:profile:isoff-on-demand:2011");
  root.set_attribute("mediaPresentationDuration", to_iso8601_duration(mpd.media_duration_s));
  root.set_attribute("minBufferTime", to_iso8601_duration(mpd.min_buffer_s));

  xml::Element& period = root.add_child("Period");
  period.set_attribute("id", "0");
  period.set_attribute("duration", to_iso8601_duration(mpd.media_duration_s));

  if (!mpd.allowed_combinations.empty()) {
    xml::Element& prop = period.add_child("SupplementalProperty");
    prop.set_attribute("schemeIdUri", kAllowedCombinationsScheme);
    prop.set_attribute("value", join(mpd.allowed_combinations, ","));
  }

  for (const MpdAdaptationSet& set : mpd.adaptation_sets) {
    xml::Element& set_el = period.add_child("AdaptationSet");
    set_el.set_attribute("contentType", set.content_type);
    set_el.set_attribute("mimeType", set.mime_type);
    set_el.set_attribute("segmentAlignment", "true");

    if (set.segment_duration_s > 0.0) {
      xml::Element& tmpl = set_el.add_child("SegmentTemplate");
      tmpl.set_attribute("timescale", static_cast<std::int64_t>(1000));
      tmpl.set_attribute("duration",
                         static_cast<std::int64_t>(std::llround(set.segment_duration_s * 1000.0)));
      tmpl.set_attribute("media", set.segment_template);
      tmpl.set_attribute("startNumber", static_cast<std::int64_t>(0));
    }

    for (const MpdRepresentation& rep : set.representations) {
      xml::Element& rep_el = set_el.add_child("Representation");
      rep_el.set_attribute("id", rep.id);
      rep_el.set_attribute("bandwidth", rep.bandwidth_bps);
      if (!rep.codecs.empty()) rep_el.set_attribute("codecs", rep.codecs);
      if (rep.width > 0) rep_el.set_attribute("width", static_cast<std::int64_t>(rep.width));
      if (rep.height > 0) rep_el.set_attribute("height", static_cast<std::int64_t>(rep.height));
      if (rep.audio_sampling_rate > 0) {
        rep_el.set_attribute("audioSamplingRate",
                             static_cast<std::int64_t>(rep.audio_sampling_rate));
      }
      if (rep.audio_channels > 0) {
        xml::Element& cc = rep_el.add_child("AudioChannelConfiguration");
        cc.set_attribute("schemeIdUri",
                         "urn:mpeg:dash:23003:3:audio_channel_configuration:2011");
        cc.set_attribute("value", static_cast<std::int64_t>(rep.audio_channels));
      }
    }
  }
  return xml::serialize_document(root);
}

namespace {

Result<MpdRepresentation> parse_representation(const xml::Element& el) {
  MpdRepresentation rep;
  const std::string* id = el.attribute("id");
  if (id == nullptr) return Error{"Representation missing @id"};
  rep.id = *id;
  const std::string* bandwidth = el.attribute("bandwidth");
  if (bandwidth == nullptr) return Error{"Representation " + rep.id + " missing @bandwidth"};
  const auto bw = parse_int(*bandwidth);
  if (!bw.has_value() || *bw <= 0) {
    return Error{"Representation " + rep.id + " has invalid @bandwidth"};
  }
  rep.bandwidth_bps = *bw;
  if (const std::string* codecs = el.attribute("codecs")) rep.codecs = *codecs;
  if (const std::string* w = el.attribute("width")) {
    rep.width = static_cast<int>(parse_int(*w).value_or(0));
  }
  if (const std::string* h = el.attribute("height")) {
    rep.height = static_cast<int>(parse_int(*h).value_or(0));
  }
  if (const std::string* sr = el.attribute("audioSamplingRate")) {
    rep.audio_sampling_rate = static_cast<int>(parse_int(*sr).value_or(0));
  }
  if (const xml::Element* cc = el.first_child("AudioChannelConfiguration")) {
    if (const std::string* v = cc->attribute("value")) {
      rep.audio_channels = static_cast<int>(parse_int(*v).value_or(0));
    }
  }
  return rep;
}

Result<MpdAdaptationSet> parse_adaptation_set(const xml::Element& el) {
  MpdAdaptationSet set;
  if (const std::string* ct = el.attribute("contentType")) set.content_type = *ct;
  if (const std::string* mt = el.attribute("mimeType")) {
    set.mime_type = *mt;
    if (set.content_type.empty()) {
      set.content_type = starts_with(*mt, "audio") ? "audio" : "video";
    }
  }
  if (set.content_type.empty()) return Error{"AdaptationSet has no contentType/mimeType"};

  if (const xml::Element* tmpl = el.first_child("SegmentTemplate")) {
    double timescale = 1.0;
    if (const std::string* ts = tmpl->attribute("timescale")) {
      timescale = static_cast<double>(parse_int(*ts).value_or(1));
    }
    if (const std::string* dur = tmpl->attribute("duration")) {
      set.segment_duration_s = static_cast<double>(parse_int(*dur).value_or(0)) / timescale;
    }
    if (const std::string* media = tmpl->attribute("media")) set.segment_template = *media;
  }

  for (const xml::Element* rep_el : el.children_named("Representation")) {
    auto rep = parse_representation(*rep_el);
    if (!rep.ok()) return Error{rep.error()};
    set.representations.push_back(std::move(rep).take());
  }
  if (set.representations.empty()) {
    return Error{"AdaptationSet (" + set.content_type + ") has no Representations"};
  }
  return set;
}

}  // namespace

Result<MpdDocument> parse_mpd(const std::string& xml_text) {
  auto parsed = xml::parse(xml_text);
  if (!parsed.ok()) return Error{parsed.error()};
  const xml::Element& root = **parsed;
  if (root.name() != "MPD") return Error{"root element is not MPD"};

  MpdDocument mpd;
  if (const std::string* dur = root.attribute("mediaPresentationDuration")) {
    const auto seconds = parse_iso8601_duration(*dur);
    if (!seconds.has_value()) return Error{"invalid mediaPresentationDuration: " + *dur};
    mpd.media_duration_s = *seconds;
  }
  if (const std::string* mbt = root.attribute("minBufferTime")) {
    mpd.min_buffer_s = parse_iso8601_duration(*mbt).value_or(2.0);
  }

  const xml::Element* period = root.first_child("Period");
  if (period == nullptr) return Error{"MPD has no Period"};

  for (const xml::Element* prop : period->children_named("SupplementalProperty")) {
    const std::string* scheme = prop->attribute("schemeIdUri");
    const std::string* value = prop->attribute("value");
    if (scheme != nullptr && *scheme == kAllowedCombinationsScheme && value != nullptr) {
      for (const std::string& label : split(*value, ',')) {
        const auto trimmed = trim(label);
        if (!trimmed.empty()) mpd.allowed_combinations.emplace_back(trimmed);
      }
    }
  }

  for (const xml::Element* set_el : period->children_named("AdaptationSet")) {
    auto set = parse_adaptation_set(*set_el);
    if (!set.ok()) return Error{set.error()};
    mpd.adaptation_sets.push_back(std::move(set).take());
  }
  if (mpd.adaptation_sets.empty()) return Error{"MPD has no AdaptationSets"};
  return mpd;
}

}  // namespace demuxabr
