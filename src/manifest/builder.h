// Server-side manifest generation from Content (the role Bento4 plays in the
// paper's testbed, §3.1). Builds:
//   * a DASH MPD with two AdaptationSets (optionally carrying the §4.1
//     allowed-combination extension),
//   * HLS master playlists H_all (all combinations) and H_sub (curated
//     subset), with controllable audio-rendition order (the Fig 3 variable),
//   * HLS media playlists in either packaging mode, optionally with the
//     EXT-X-BITRATE tag §4.1 recommends making mandatory.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "manifest/dash_mpd.h"
#include "manifest/hls_playlist.h"
#include "media/combination.h"
#include "media/content.h"

namespace demuxabr {

/// "video/V3.m3u8" -> "V3"; "seg/A1/00042.m4s" -> "A1" (second-to-last path
/// component when the last is a segment number). Returns "" when unparseable.
std::string track_id_from_uri(const std::string& uri);

/// Audio rendition group id for a track ("audio-A1").
std::string audio_group_for(const std::string& audio_id);

struct DashBuildOptions {
  /// When non-empty, emit the §4.1 SupplementalProperty extension listing
  /// these combinations. Standard DASH (the paper's baseline) leaves it out.
  std::vector<AvCombination> allowed_combinations;
};

MpdDocument build_dash_mpd(const Content& content, const DashBuildOptions& options = {});

struct HlsMasterOptions {
  /// The combinations to list as variants (H_all or H_sub), in order.
  std::vector<AvCombination> combos;
  /// Audio rendition order in the master playlist. Empty = ladder order.
  /// The paper's Fig 3 experiments vary which track is listed first.
  std::vector<std::string> audio_order;
  /// Whether to declare AVERAGE-BANDWIDTH in addition to BANDWIDTH.
  bool include_average_bandwidth = true;
};

HlsMasterPlaylist build_hls_master(const Content& content, const HlsMasterOptions& options);

/// H_all: all |V| x |A| combinations, increasing aggregate peak (Table 2).
HlsMasterPlaylist build_hall_master(const Content& content,
                                    std::vector<std::string> audio_order = {});

/// H_sub: the curated subset (Table 3).
HlsMasterPlaylist build_hsub_master(const Content& content,
                                    std::vector<std::string> audio_order = {});

enum class PackagingMode {
  kSeparateFiles,       ///< one file per chunk; no byte ranges
  kSingleFileByteRange  ///< one file per track; EXT-X-BYTERANGE addressing
};

struct HlsMediaOptions {
  PackagingMode packaging = PackagingMode::kSeparateFiles;
  /// Emit EXT-X-BITRATE per segment (the §4.1 "should be mandatory" tag).
  bool include_bitrate_tag = false;
};

HlsMediaPlaylist build_hls_media(const Content& content, const std::string& track_id,
                                 const HlsMediaOptions& options = {});

/// All media playlists of a content keyed by track id.
std::map<std::string, HlsMediaPlaylist> build_all_media_playlists(
    const Content& content, const HlsMediaOptions& options = {});

}  // namespace demuxabr
