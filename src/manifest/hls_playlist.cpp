#include "manifest/hls_playlist.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace demuxabr {

std::vector<std::string> HlsMasterPlaylist::video_uris() const {
  std::vector<std::string> uris;
  for (const HlsVariant& v : variants) {
    if (std::find(uris.begin(), uris.end(), v.uri) == uris.end()) uris.push_back(v.uri);
  }
  return uris;
}

const HlsVariant* HlsMasterPlaylist::first_variant_with_uri(const std::string& uri) const {
  for (const HlsVariant& v : variants) {
    if (v.uri == uri) return &v;
  }
  return nullptr;
}

double HlsMediaPlaylist::total_duration_s() const {
  double total = 0.0;
  for (const HlsSegment& s : segments) total += s.duration_s;
  return total;
}

double HlsMediaPlaylist::average_bitrate_from_byteranges_kbps() const {
  std::int64_t bytes = 0;
  double seconds = 0.0;
  for (const HlsSegment& s : segments) {
    if (!s.has_byterange()) return 0.0;
    bytes += s.byterange_length;
    seconds += s.duration_s;
  }
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / 1000.0 / seconds;
}

double HlsMediaPlaylist::peak_bitrate_kbps() const {
  double peak = 0.0;
  for (const HlsSegment& s : segments) {
    double kbps = s.bitrate_kbps;
    if (kbps <= 0.0 && s.has_byterange() && s.duration_s > 0.0) {
      kbps = static_cast<double>(s.byterange_length) * 8.0 / 1000.0 / s.duration_s;
    }
    peak = std::max(peak, kbps);
  }
  return peak;
}

double HlsMediaPlaylist::average_bitrate_from_tags_kbps() const {
  double sum = 0.0;
  double seconds = 0.0;
  for (const HlsSegment& s : segments) {
    if (s.bitrate_kbps <= 0.0) return 0.0;
    sum += s.bitrate_kbps * s.duration_s;
    seconds += s.duration_s;
  }
  return seconds > 0.0 ? sum / seconds : 0.0;
}

std::string serialize_master(const HlsMasterPlaylist& playlist) {
  std::ostringstream out;
  out << "#EXTM3U\n";
  out << "#EXT-X-VERSION:" << playlist.version << '\n';
  for (const HlsMediaRendition& r : playlist.audio_renditions) {
    out << "#EXT-X-MEDIA:TYPE=" << r.type << ",GROUP-ID=" << quote_attribute(r.group_id)
        << ",NAME=" << quote_attribute(r.name)
        << ",DEFAULT=" << (r.is_default ? "YES" : "NO")
        << ",AUTOSELECT=" << (r.autoselect ? "YES" : "NO");
    if (!r.uri.empty()) out << ",URI=" << quote_attribute(r.uri);
    out << '\n';
  }
  for (const HlsVariant& v : playlist.variants) {
    out << "#EXT-X-STREAM-INF:BANDWIDTH=" << v.bandwidth_bps;
    if (v.average_bandwidth_bps > 0) out << ",AVERAGE-BANDWIDTH=" << v.average_bandwidth_bps;
    if (!v.codecs.empty()) out << ",CODECS=" << quote_attribute(v.codecs);
    if (!v.resolution.empty()) out << ",RESOLUTION=" << v.resolution;
    if (!v.audio_group.empty()) out << ",AUDIO=" << quote_attribute(v.audio_group);
    out << '\n' << v.uri << '\n';
  }
  return out.str();
}

namespace {

Result<HlsMediaRendition> parse_media_tag(std::string_view attrs) {
  HlsMediaRendition r;
  for (const auto& [key, value] : parse_attribute_list(attrs)) {
    if (key == "TYPE") {
      r.type = value;
    } else if (key == "GROUP-ID") {
      r.group_id = value;
    } else if (key == "NAME") {
      r.name = value;
    } else if (key == "URI") {
      r.uri = value;
    } else if (key == "DEFAULT") {
      r.is_default = (value == "YES");
    } else if (key == "AUTOSELECT") {
      r.autoselect = (value == "YES");
    }
  }
  if (r.group_id.empty()) return Error{"EXT-X-MEDIA missing GROUP-ID"};
  return r;
}

Result<HlsVariant> parse_stream_inf(std::string_view attrs) {
  HlsVariant v;
  for (const auto& [key, value] : parse_attribute_list(attrs)) {
    if (key == "BANDWIDTH") {
      const auto bw = parse_int(value);
      if (!bw.has_value() || *bw <= 0) return Error{"EXT-X-STREAM-INF invalid BANDWIDTH"};
      v.bandwidth_bps = *bw;
    } else if (key == "AVERAGE-BANDWIDTH") {
      v.average_bandwidth_bps = parse_int(value).value_or(0);
    } else if (key == "CODECS") {
      v.codecs = value;
    } else if (key == "RESOLUTION") {
      v.resolution = value;
    } else if (key == "AUDIO") {
      v.audio_group = value;
    }
  }
  if (v.bandwidth_bps <= 0) return Error{"EXT-X-STREAM-INF missing BANDWIDTH"};
  return v;
}

}  // namespace

Result<HlsMasterPlaylist> parse_master(const std::string& text) {
  const std::vector<std::string> lines = split_lines(text);
  if (lines.empty() || trim(lines[0]) != "#EXTM3U") {
    return Error{"master playlist must start with #EXTM3U"};
  }
  HlsMasterPlaylist playlist;
  bool pending_variant = false;
  HlsVariant variant;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = trim(lines[i]);
    if (line.empty()) continue;
    if (starts_with(line, "#EXT-X-VERSION:")) {
      playlist.version =
          static_cast<int>(parse_int(line.substr(std::string("#EXT-X-VERSION:").size()))
                               .value_or(6));
    } else if (starts_with(line, "#EXT-X-MEDIA:")) {
      auto rendition = parse_media_tag(line.substr(std::string("#EXT-X-MEDIA:").size()));
      if (!rendition.ok()) return Error{rendition.error()};
      if (rendition->type == "AUDIO") playlist.audio_renditions.push_back(std::move(rendition).take());
    } else if (starts_with(line, "#EXT-X-STREAM-INF:")) {
      auto parsed = parse_stream_inf(line.substr(std::string("#EXT-X-STREAM-INF:").size()));
      if (!parsed.ok()) return Error{parsed.error()};
      variant = std::move(parsed).take();
      pending_variant = true;
    } else if (!starts_with(line, "#")) {
      if (!pending_variant) return Error{"URI line without preceding EXT-X-STREAM-INF"};
      variant.uri = std::string(line);
      playlist.variants.push_back(variant);
      pending_variant = false;
    }
  }
  if (pending_variant) return Error{"EXT-X-STREAM-INF without URI line"};
  if (playlist.variants.empty()) return Error{"master playlist has no variants"};
  return playlist;
}

std::string serialize_media(const HlsMediaPlaylist& playlist) {
  std::ostringstream out;
  out << "#EXTM3U\n";
  out << "#EXT-X-VERSION:" << playlist.version << '\n';
  out << "#EXT-X-TARGETDURATION:"
      << static_cast<std::int64_t>(playlist.target_duration_s + 0.999) << '\n';
  out << "#EXT-X-MEDIA-SEQUENCE:" << playlist.media_sequence << '\n';
  out << "#EXT-X-PLAYLIST-TYPE:VOD\n";
  for (const HlsSegment& s : playlist.segments) {
    if (s.bitrate_kbps > 0.0) {
      out << "#EXT-X-BITRATE:" << static_cast<std::int64_t>(s.bitrate_kbps + 0.5) << '\n';
    }
    out << format("#EXTINF:%.3f,\n", s.duration_s);
    if (s.has_byterange()) {
      out << "#EXT-X-BYTERANGE:" << s.byterange_length << '@' << s.byterange_offset << '\n';
    }
    out << s.uri << '\n';
  }
  if (playlist.ended) out << "#EXT-X-ENDLIST\n";
  return out.str();
}

Result<HlsMediaPlaylist> parse_media(const std::string& text) {
  const std::vector<std::string> lines = split_lines(text);
  if (lines.empty() || trim(lines[0]) != "#EXTM3U") {
    return Error{"media playlist must start with #EXTM3U"};
  }
  HlsMediaPlaylist playlist;
  playlist.ended = false;
  HlsSegment segment;
  bool pending_segment = false;
  double current_bitrate_kbps = 0.0;  // EXT-X-BITRATE applies until changed
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = trim(lines[i]);
    if (line.empty()) continue;
    if (starts_with(line, "#EXT-X-VERSION:")) {
      playlist.version = static_cast<int>(
          parse_int(line.substr(std::string("#EXT-X-VERSION:").size())).value_or(6));
    } else if (starts_with(line, "#EXT-X-TARGETDURATION:")) {
      playlist.target_duration_s =
          parse_double(line.substr(std::string("#EXT-X-TARGETDURATION:").size())).value_or(0.0);
    } else if (starts_with(line, "#EXT-X-MEDIA-SEQUENCE:")) {
      playlist.media_sequence = static_cast<int>(
          parse_int(line.substr(std::string("#EXT-X-MEDIA-SEQUENCE:").size())).value_or(0));
    } else if (starts_with(line, "#EXT-X-BITRATE:")) {
      current_bitrate_kbps =
          parse_double(line.substr(std::string("#EXT-X-BITRATE:").size())).value_or(0.0);
    } else if (starts_with(line, "#EXTINF:")) {
      std::string_view payload = line.substr(std::string("#EXTINF:").size());
      const std::size_t comma = payload.find(',');
      if (comma != std::string_view::npos) payload = payload.substr(0, comma);
      const auto duration = parse_double(payload);
      if (!duration.has_value() || *duration <= 0.0) return Error{"invalid EXTINF duration"};
      segment = HlsSegment{};
      segment.duration_s = *duration;
      segment.bitrate_kbps = current_bitrate_kbps;
      pending_segment = true;
    } else if (starts_with(line, "#EXT-X-BYTERANGE:")) {
      if (!pending_segment) return Error{"EXT-X-BYTERANGE without EXTINF"};
      const std::string_view payload = line.substr(std::string("#EXT-X-BYTERANGE:").size());
      const std::size_t at = payload.find('@');
      if (at == std::string_view::npos) return Error{"EXT-X-BYTERANGE requires explicit offset"};
      const auto length = parse_int(payload.substr(0, at));
      const auto offset = parse_int(payload.substr(at + 1));
      if (!length.has_value() || !offset.has_value() || *length < 0 || *offset < 0) {
        return Error{"invalid EXT-X-BYTERANGE"};
      }
      segment.byterange_length = *length;
      segment.byterange_offset = *offset;
    } else if (starts_with(line, "#EXT-X-ENDLIST")) {
      playlist.ended = true;
    } else if (!starts_with(line, "#")) {
      if (!pending_segment) return Error{"segment URI without EXTINF"};
      segment.uri = std::string(line);
      playlist.segments.push_back(segment);
      pending_segment = false;
    }
  }
  if (pending_segment) return Error{"EXTINF without segment URI"};
  if (playlist.segments.empty()) return Error{"media playlist has no segments"};
  return playlist;
}

}  // namespace demuxabr
