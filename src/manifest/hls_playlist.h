// HLS playlist model, serializer and parser (RFC 8216 subset).
//
// Master playlist: EXT-X-MEDIA audio renditions + EXT-X-STREAM-INF variants.
// A variant pairs a video media-playlist URI with an audio GROUP-ID and
// declares only the *aggregate* BANDWIDTH of the combination (§2.3) — the
// root cause of ExoPlayer's HLS behaviour in §3.2.
//
// Media playlist: EXTINF segments with either per-file URIs or
// EXT-X-BYTERANGE (single-file packaging), plus the optional EXT-X-BITRATE
// tag whose mandatory use §4.1 recommends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace demuxabr {

/// EXT-X-MEDIA entry (audio rendition). Order in the playlist matters:
/// ExoPlayer falls back to the first listed rendition (§3.2/HLS).
struct HlsMediaRendition {
  std::string type = "AUDIO";
  std::string group_id;  ///< e.g. "audio-A1"
  std::string name;      ///< e.g. "A1"
  std::string uri;       ///< media playlist of this rendition
  bool is_default = false;
  bool autoselect = true;
};

/// EXT-X-STREAM-INF entry: one allowed audio/video combination.
struct HlsVariant {
  std::int64_t bandwidth_bps = 0;          ///< required; aggregate peak
  std::int64_t average_bandwidth_bps = 0;  ///< optional; aggregate average
  std::string codecs;
  std::string resolution;   ///< "WxH" of the video track; empty = omit
  std::string audio_group;  ///< AUDIO attribute referencing a rendition group
  std::string uri;          ///< video media playlist
};

struct HlsMasterPlaylist {
  int version = 6;
  std::vector<HlsMediaRendition> audio_renditions;
  std::vector<HlsVariant> variants;

  /// All distinct video playlist URIs in variant order.
  [[nodiscard]] std::vector<std::string> video_uris() const;
  /// First variant whose URI matches; nullptr when absent.
  [[nodiscard]] const HlsVariant* first_variant_with_uri(const std::string& uri) const;
};

struct HlsSegment {
  double duration_s = 0.0;
  std::string uri;
  /// Single-file packaging: EXT-X-BYTERANGE length@offset; -1 = absent.
  std::int64_t byterange_length = -1;
  std::int64_t byterange_offset = -1;
  /// EXT-X-BITRATE in kbps; 0 = absent.
  double bitrate_kbps = 0.0;

  [[nodiscard]] bool has_byterange() const { return byterange_length >= 0; }
};

struct HlsMediaPlaylist {
  int version = 6;
  double target_duration_s = 0.0;
  int media_sequence = 0;
  std::vector<HlsSegment> segments;
  bool ended = true;

  [[nodiscard]] double total_duration_s() const;
  /// Average bitrate derivable from byteranges (if present), kbps; 0 if not.
  [[nodiscard]] double average_bitrate_from_byteranges_kbps() const;
  /// Peak per-segment bitrate from EXT-X-BITRATE or byteranges, kbps.
  [[nodiscard]] double peak_bitrate_kbps() const;
  /// Average per-segment bitrate from EXT-X-BITRATE tags, kbps; 0 if absent.
  [[nodiscard]] double average_bitrate_from_tags_kbps() const;
};

std::string serialize_master(const HlsMasterPlaylist& playlist);
Result<HlsMasterPlaylist> parse_master(const std::string& text);

std::string serialize_media(const HlsMediaPlaylist& playlist);
Result<HlsMediaPlaylist> parse_media(const std::string& text);

}  // namespace demuxabr
