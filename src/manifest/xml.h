// Minimal XML document model + writer + parser, sufficient for DASH MPDs.
//
// Supports: elements, attributes, text content, self-closing tags, XML
// declaration, comments (skipped). Not supported (not needed for MPD):
// namespaces resolution (prefixes are kept verbatim), DTDs, CDATA.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace demuxabr::xml {

class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  Element& set_attribute(const std::string& key, const std::string& value);
  Element& set_attribute(const std::string& key, std::int64_t value);
  Element& set_attribute(const std::string& key, double value);

  /// nullptr when missing.
  [[nodiscard]] const std::string* attribute(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  /// Append and return a new child element.
  Element& add_child(const std::string& name);
  /// Append an already-built child element.
  Element& add_child(std::unique_ptr<Element> child);
  [[nodiscard]] const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// First child with the given name; nullptr when absent.
  [[nodiscard]] const Element* first_child(const std::string& name) const;
  /// All children with the given name.
  [[nodiscard]] std::vector<const Element*> children_named(const std::string& name) const;

  void set_text(std::string text) { text_ = std::move(text); }
  [[nodiscard]] const std::string& text() const { return text_; }

  /// Serialize (indented, 2 spaces per level).
  [[nodiscard]] std::string to_string(int indent = 0) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<Element>> children_;
  std::string text_;
};

/// Serialize with an <?xml?> declaration.
std::string serialize_document(const Element& root);

/// Parse a document; returns the root element.
Result<std::unique_ptr<Element>> parse(const std::string& text);

/// Escape text for use in attribute values / text nodes.
std::string escape(const std::string& text);

}  // namespace demuxabr::xml
