// DASH MPD (Media Presentation Description) model, serializer and parser.
//
// Covers the subset of ISO/IEC 23009-1 exercised by the paper: one Period,
// one AdaptationSet per content type (audio / video), Representations with
// @bandwidth (the per-track *declared* bitrate, §2.3), and SegmentTemplate
// addressing. Also implements the paper's §4.1 proposal as an extension: an
// allowed-combination list carried in a SupplementalProperty descriptor
// (scheme "urn:demuxabr:allowed-combinations:2019", value "V1+A1,V2+A1,...").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace demuxabr {

/// Scheme URI of the allowed-combinations extension descriptor (§4.1).
inline constexpr const char* kAllowedCombinationsScheme =
    "urn:demuxabr:allowed-combinations:2019";

struct MpdRepresentation {
  std::string id;                ///< track id ("V3", "A1")
  std::int64_t bandwidth_bps = 0;  ///< DASH @bandwidth (declared bitrate)
  std::string codecs;
  // Video attributes (0 when audio).
  int width = 0;
  int height = 0;
  // Audio attributes (0 when video).
  int audio_sampling_rate = 0;
  int audio_channels = 0;
};

struct MpdAdaptationSet {
  std::string content_type;  ///< "audio" or "video"
  std::string mime_type;     ///< "audio/mp4" or "video/mp4"
  double segment_duration_s = 0.0;
  std::string segment_template;  ///< e.g. "seg/$RepresentationID$/$Number$.m4s"
  std::vector<MpdRepresentation> representations;
};

struct MpdDocument {
  double media_duration_s = 0.0;
  double min_buffer_s = 2.0;
  std::vector<MpdAdaptationSet> adaptation_sets;
  /// §4.1 extension: combination labels like "V1+A1". Empty = not provided
  /// (the standard-DASH situation the paper critiques).
  std::vector<std::string> allowed_combinations;

  [[nodiscard]] const MpdAdaptationSet* adaptation_set(const std::string& content_type) const;
};

/// Render the MPD as XML text.
std::string serialize_mpd(const MpdDocument& mpd);

/// Parse MPD XML text back into the model.
Result<MpdDocument> parse_mpd(const std::string& xml_text);

/// ISO 8601 duration helpers ("PT5M0.000S").
std::string to_iso8601_duration(double seconds);
std::optional<double> parse_iso8601_duration(const std::string& text);

}  // namespace demuxabr
