// ManifestView: the information a *player* can legitimately learn from a
// manifest. Players in this library never see server-side Content — only a
// view — which is how the paper's root causes are made structural:
//   * a DASH view knows per-track declared bitrates but (absent the §4.1
//     extension) no allowed-combination list;
//   * an HLS top-level view knows combination aggregate bandwidths but no
//     per-track audio bitrates (ExoPlayer's §3.2 problem);
//   * fetching second-level HLS media playlists (the §4.1 recommendation)
//     upgrades the view with per-track bitrates derived from EXT-X-BITRATE
//     or byte ranges.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "manifest/dash_mpd.h"
#include "manifest/hls_playlist.h"
#include "media/track.h"

namespace demuxabr {

enum class Protocol { kDash, kHls };

inline const char* protocol_name(Protocol p) {
  return p == Protocol::kDash ? "DASH" : "HLS";
}

/// A track as visible to the player.
struct TrackView {
  std::string id;
  MediaType type = MediaType::kVideo;
  /// Declared bitrate; meaningful only when bitrate_known.
  double declared_kbps = 0.0;
  bool bitrate_known = false;
  /// Average bitrate when derivable (EXT-X-BITRATE / byte ranges); else 0.
  double avg_kbps = 0.0;
  int width = 0;
  int height = 0;
};

/// A listed audio/video combination as visible to the player.
struct ComboView {
  std::string video_id;
  std::string audio_id;
  double bandwidth_kbps = 0.0;      ///< aggregate requirement (HLS BANDWIDTH)
  double avg_bandwidth_kbps = 0.0;  ///< aggregate average; 0 when undeclared
  /// Per-component declared bitrates when the manifest reveals them (§4.1:
  /// needed when audio and video ride different network paths). 0 = unknown
  /// (e.g. HLS top-level manifests only declare the aggregate).
  double video_kbps = 0.0;
  double audio_kbps = 0.0;

  [[nodiscard]] bool components_known() const {
    return video_kbps > 0.0 && audio_kbps > 0.0;
  }
  [[nodiscard]] std::string label() const { return video_id + "+" + audio_id; }
};

struct ManifestView {
  Protocol protocol = Protocol::kDash;
  /// Manifest order (HLS rendition order matters for ExoPlayer's fallback).
  std::vector<TrackView> audio_tracks;
  std::vector<TrackView> video_tracks;
  /// Listed combinations, manifest order. Empty for plain DASH.
  std::vector<ComboView> combos;
  /// True when the manifest restricts selection to `combos` (HLS always;
  /// DASH only with the §4.1 extension).
  bool has_combination_list = false;

  /// Timeline knowledge (from MPD duration or a fetched media playlist).
  double chunk_duration_s = 0.0;
  int total_chunks = 0;

  [[nodiscard]] const TrackView* find_track(const std::string& id) const;
  [[nodiscard]] const std::vector<TrackView>& tracks(MediaType type) const {
    return type == MediaType::kAudio ? audio_tracks : video_tracks;
  }
  /// Declared bandwidth of a (video, audio) pair: the listed combo bandwidth
  /// when present, else the sum of known per-track bitrates.
  [[nodiscard]] std::optional<double> pair_bandwidth_kbps(const std::string& video_id,
                                                          const std::string& audio_id) const;
  /// Is this (video, audio) pair allowed by the manifest?
  [[nodiscard]] bool pair_listed(const std::string& video_id,
                                 const std::string& audio_id) const;
  /// Combos sorted by ascending aggregate bandwidth.
  [[nodiscard]] std::vector<ComboView> combos_sorted() const;
};

/// Build the player view of a DASH MPD.
ManifestView view_from_mpd(const MpdDocument& mpd);

/// Build the player view of an HLS master playlist. `media_playlists`
/// (track id -> playlist) is optional: nullptr models the "commercial
/// player" behaviour the paper describes (top-level information only);
/// providing it models the §4.1 recommendation of reading second-level
/// playlists before adaptation starts.
ManifestView view_from_hls(const HlsMasterPlaylist& master,
                           const std::map<std::string, HlsMediaPlaylist>* media_playlists);

}  // namespace demuxabr
