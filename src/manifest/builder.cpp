#include "manifest/builder.h"

#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace demuxabr {

std::string track_id_from_uri(const std::string& uri) {
  // Strip query, take path components.
  std::string path = uri;
  if (const auto q = path.find('?'); q != std::string::npos) path.resize(q);
  const std::vector<std::string> parts = split(path, '/');
  if (parts.empty()) return "";
  std::string last = parts.back();
  const auto dot = last.rfind('.');
  std::string stem = dot == std::string::npos ? last : last.substr(0, dot);
  // "video/V3.m3u8" -> stem "V3". "seg/A1/00042.m4s" -> stem is a number,
  // use the directory component instead.
  const bool numeric = !stem.empty() && stem.find_first_not_of("0123456789") == std::string::npos;
  if (numeric && parts.size() >= 2) return parts[parts.size() - 2];
  return stem;
}

std::string audio_group_for(const std::string& audio_id) { return "audio-" + audio_id; }

MpdDocument build_dash_mpd(const Content& content, const DashBuildOptions& options) {
  const BitrateLadder& ladder = content.ladder();
  MpdDocument mpd;
  mpd.media_duration_s = content.duration_s();
  mpd.min_buffer_s = 2.0;

  MpdAdaptationSet audio_set;
  audio_set.content_type = "audio";
  audio_set.mime_type = "audio/mp4";
  audio_set.segment_duration_s = content.chunk_duration_s();
  audio_set.segment_template = "seg/$RepresentationID$/$Number$.m4s";
  for (const TrackInfo& t : ladder.audio()) {
    MpdRepresentation rep;
    rep.id = t.id;
    rep.bandwidth_bps = static_cast<std::int64_t>(std::llround(t.declared_kbps * 1000.0));
    rep.codecs = t.codec;
    rep.audio_sampling_rate = t.sample_rate_hz;
    rep.audio_channels = t.channels;
    audio_set.representations.push_back(std::move(rep));
  }

  MpdAdaptationSet video_set;
  video_set.content_type = "video";
  video_set.mime_type = "video/mp4";
  video_set.segment_duration_s = content.chunk_duration_s();
  video_set.segment_template = "seg/$RepresentationID$/$Number$.m4s";
  for (const TrackInfo& t : ladder.video()) {
    MpdRepresentation rep;
    rep.id = t.id;
    rep.bandwidth_bps = static_cast<std::int64_t>(std::llround(t.declared_kbps * 1000.0));
    rep.codecs = t.codec;
    rep.width = t.width;
    rep.height = t.height;
    video_set.representations.push_back(std::move(rep));
  }

  mpd.adaptation_sets.push_back(std::move(video_set));
  mpd.adaptation_sets.push_back(std::move(audio_set));

  for (const AvCombination& combo : options.allowed_combinations) {
    mpd.allowed_combinations.push_back(combo.label());
  }
  return mpd;
}

HlsMasterPlaylist build_hls_master(const Content& content, const HlsMasterOptions& options) {
  const BitrateLadder& ladder = content.ladder();
  assert(!options.combos.empty());

  HlsMasterPlaylist playlist;

  // Audio renditions, in the requested order (default: ladder order). Only
  // tracks referenced by at least one combo are listed.
  std::vector<std::string> order = options.audio_order;
  if (order.empty()) {
    for (const TrackInfo& t : ladder.audio()) order.push_back(t.id);
  }
  for (const std::string& id : order) {
    [[maybe_unused]] const TrackInfo* track = ladder.find(id);
    assert(track != nullptr && track->is_audio());
    bool referenced = false;
    for (const AvCombination& combo : options.combos) {
      if (combo.audio_id == id) referenced = true;
    }
    if (!referenced) continue;
    HlsMediaRendition rendition;
    rendition.group_id = audio_group_for(id);
    rendition.name = id;
    rendition.uri = "audio/" + id + ".m3u8";
    rendition.is_default = playlist.audio_renditions.empty();
    playlist.audio_renditions.push_back(std::move(rendition));
  }

  for (const AvCombination& combo : options.combos) {
    const TrackInfo* video = ladder.find(combo.video_id);
    const TrackInfo* audio = ladder.find(combo.audio_id);
    assert(video != nullptr && audio != nullptr);
    HlsVariant variant;
    variant.bandwidth_bps = static_cast<std::int64_t>(std::llround(combo.peak_kbps * 1000.0));
    if (options.include_average_bandwidth) {
      variant.average_bandwidth_bps =
          static_cast<std::int64_t>(std::llround(combo.avg_kbps * 1000.0));
    }
    variant.codecs = video->codec + "," + audio->codec;
    variant.resolution = format("%dx%d", video->width, video->height);
    variant.audio_group = audio_group_for(combo.audio_id);
    variant.uri = "video/" + combo.video_id + ".m3u8";
    playlist.variants.push_back(std::move(variant));
  }
  return playlist;
}

HlsMasterPlaylist build_hall_master(const Content& content,
                                    std::vector<std::string> audio_order) {
  HlsMasterOptions options;
  options.combos = all_combinations(content.ladder());
  options.audio_order = std::move(audio_order);
  return build_hls_master(content, options);
}

HlsMasterPlaylist build_hsub_master(const Content& content,
                                    std::vector<std::string> audio_order) {
  HlsMasterOptions options;
  options.combos = curated_subset(content.ladder());
  options.audio_order = std::move(audio_order);
  return build_hls_master(content, options);
}

HlsMediaPlaylist build_hls_media(const Content& content, const std::string& track_id,
                                 const HlsMediaOptions& options) {
  const std::vector<ChunkInfo>& chunks = content.chunks(track_id);
  HlsMediaPlaylist playlist;
  playlist.target_duration_s = content.chunk_duration_s();
  std::int64_t offset = 0;
  for (const ChunkInfo& chunk : chunks) {
    HlsSegment segment;
    segment.duration_s = chunk.duration_s;
    if (options.packaging == PackagingMode::kSingleFileByteRange) {
      segment.uri = track_id + ".mp4";
      segment.byterange_length = chunk.size_bytes;
      segment.byterange_offset = offset;
      offset += chunk.size_bytes;
    } else {
      segment.uri = format("seg/%s/%05d.m4s", track_id.c_str(), chunk.index);
    }
    if (options.include_bitrate_tag) segment.bitrate_kbps = chunk.bitrate_kbps();
    playlist.segments.push_back(std::move(segment));
  }
  playlist.ended = true;
  return playlist;
}

std::map<std::string, HlsMediaPlaylist> build_all_media_playlists(
    const Content& content, const HlsMediaOptions& options) {
  std::map<std::string, HlsMediaPlaylist> playlists;
  for (const auto* list : {&content.ladder().audio(), &content.ladder().video()}) {
    for (const TrackInfo& track : *list) {
      playlists[track.id] = build_hls_media(content, track.id, options);
    }
  }
  return playlists;
}

}  // namespace demuxabr
