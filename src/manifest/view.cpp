#include "manifest/view.h"

#include <algorithm>
#include <cmath>

#include "manifest/builder.h"
#include "util/strings.h"

namespace demuxabr {

const TrackView* ManifestView::find_track(const std::string& id) const {
  for (const TrackView& t : audio_tracks) {
    if (t.id == id) return &t;
  }
  for (const TrackView& t : video_tracks) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

std::optional<double> ManifestView::pair_bandwidth_kbps(const std::string& video_id,
                                                        const std::string& audio_id) const {
  for (const ComboView& c : combos) {
    if (c.video_id == video_id && c.audio_id == audio_id) return c.bandwidth_kbps;
  }
  const TrackView* video = find_track(video_id);
  const TrackView* audio = find_track(audio_id);
  if (video != nullptr && audio != nullptr && video->bitrate_known && audio->bitrate_known) {
    return video->declared_kbps + audio->declared_kbps;
  }
  return std::nullopt;
}

bool ManifestView::pair_listed(const std::string& video_id, const std::string& audio_id) const {
  for (const ComboView& c : combos) {
    if (c.video_id == video_id && c.audio_id == audio_id) return true;
  }
  return false;
}

std::vector<ComboView> ManifestView::combos_sorted() const {
  std::vector<ComboView> sorted = combos;
  std::stable_sort(sorted.begin(), sorted.end(), [](const ComboView& a, const ComboView& b) {
    return a.bandwidth_kbps < b.bandwidth_kbps;
  });
  return sorted;
}

ManifestView view_from_mpd(const MpdDocument& mpd) {
  ManifestView view;
  view.protocol = Protocol::kDash;

  for (const MpdAdaptationSet& set : mpd.adaptation_sets) {
    const bool is_audio = set.content_type == "audio";
    for (const MpdRepresentation& rep : set.representations) {
      TrackView t;
      t.id = rep.id;
      t.type = is_audio ? MediaType::kAudio : MediaType::kVideo;
      t.declared_kbps = static_cast<double>(rep.bandwidth_bps) / 1000.0;
      t.bitrate_known = true;
      t.avg_kbps = t.declared_kbps;  // DASH declares one number per track
      t.width = rep.width;
      t.height = rep.height;
      (is_audio ? view.audio_tracks : view.video_tracks).push_back(std::move(t));
    }
    if (set.segment_duration_s > 0.0) view.chunk_duration_s = set.segment_duration_s;
  }
  if (view.chunk_duration_s > 0.0 && mpd.media_duration_s > 0.0) {
    view.total_chunks =
        static_cast<int>(std::llround(mpd.media_duration_s / view.chunk_duration_s));
  }

  // §4.1 extension: allowed-combination labels ("V1+A1").
  for (const std::string& label : mpd.allowed_combinations) {
    const std::vector<std::string> parts = split(label, '+');
    if (parts.size() != 2) continue;
    ComboView combo;
    combo.video_id = std::string(trim(parts[0]));
    combo.audio_id = std::string(trim(parts[1]));
    const TrackView* video = view.find_track(combo.video_id);
    const TrackView* audio = view.find_track(combo.audio_id);
    if (video == nullptr || audio == nullptr) continue;
    combo.video_kbps = video->declared_kbps;
    combo.audio_kbps = audio->declared_kbps;
    combo.bandwidth_kbps = video->declared_kbps + audio->declared_kbps;
    combo.avg_bandwidth_kbps = combo.bandwidth_kbps;
    view.combos.push_back(std::move(combo));
  }
  view.has_combination_list = !view.combos.empty();
  return view;
}

ManifestView view_from_hls(const HlsMasterPlaylist& master,
                           const std::map<std::string, HlsMediaPlaylist>* media_playlists) {
  ManifestView view;
  view.protocol = Protocol::kHls;
  view.has_combination_list = true;

  // Audio tracks from EXT-X-MEDIA, in playlist order. The top-level master
  // playlist carries no per-rendition bitrate (§2.3) — bitrate_known stays
  // false unless the second-level playlists are supplied.
  for (const HlsMediaRendition& r : master.audio_renditions) {
    TrackView t;
    t.id = r.name.empty() ? track_id_from_uri(r.uri) : r.name;
    t.type = MediaType::kAudio;
    view.audio_tracks.push_back(std::move(t));
  }

  // Video tracks from distinct variant URIs, in first-appearance order.
  for (const std::string& uri : master.video_uris()) {
    TrackView t;
    t.id = track_id_from_uri(uri);
    t.type = MediaType::kVideo;
    if (const HlsVariant* v = master.first_variant_with_uri(uri)) {
      const std::vector<std::string> dims = split(v->resolution, 'x');
      if (dims.size() == 2) {
        t.width = static_cast<int>(parse_int(dims[0]).value_or(0));
        t.height = static_cast<int>(parse_int(dims[1]).value_or(0));
      }
    }
    view.video_tracks.push_back(std::move(t));
  }

  // Combinations from the variants.
  for (const HlsVariant& v : master.variants) {
    ComboView combo;
    combo.video_id = track_id_from_uri(v.uri);
    // Resolve the audio group to the rendition's track id.
    for (const HlsMediaRendition& r : master.audio_renditions) {
      if (r.group_id == v.audio_group) {
        combo.audio_id = r.name.empty() ? track_id_from_uri(r.uri) : r.name;
        break;
      }
    }
    combo.bandwidth_kbps = static_cast<double>(v.bandwidth_bps) / 1000.0;
    combo.avg_bandwidth_kbps = static_cast<double>(v.average_bandwidth_bps) / 1000.0;
    view.combos.push_back(std::move(combo));
  }

  // §4.1: reading the second-level playlists reveals per-track bitrates.
  if (media_playlists != nullptr) {
    auto fill = [&](TrackView& t) {
      auto it = media_playlists->find(t.id);
      if (it == media_playlists->end()) return;
      const HlsMediaPlaylist& playlist = it->second;
      const double peak = playlist.peak_bitrate_kbps();
      double avg = playlist.average_bitrate_from_tags_kbps();
      if (avg <= 0.0) avg = playlist.average_bitrate_from_byteranges_kbps();
      if (peak > 0.0) {
        t.declared_kbps = peak;
        t.avg_kbps = avg > 0.0 ? avg : peak;
        t.bitrate_known = true;
      }
      if (view.chunk_duration_s <= 0.0 && !playlist.segments.empty()) {
        view.chunk_duration_s = playlist.segments.front().duration_s;
        view.total_chunks = static_cast<int>(playlist.segments.size());
      }
    };
    for (TrackView& t : view.audio_tracks) fill(t);
    for (TrackView& t : view.video_tracks) fill(t);
    // With per-track bitrates known, the combinations gain per-component
    // requirements (§4.1's split-path recommendation).
    for (ComboView& combo : view.combos) {
      const TrackView* video = view.find_track(combo.video_id);
      const TrackView* audio = view.find_track(combo.audio_id);
      if (video != nullptr && video->bitrate_known) combo.video_kbps = video->declared_kbps;
      if (audio != nullptr && audio->bitrate_known) combo.audio_kbps = audio->declared_kbps;
    }
  }
  return view;
}

}  // namespace demuxabr
