# Empty dependencies file for manifest_tests.
# This may be replaced when dependencies are built.
