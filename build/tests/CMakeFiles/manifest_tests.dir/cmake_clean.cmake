file(REMOVE_RECURSE
  "CMakeFiles/manifest_tests.dir/test_manifest_dash.cpp.o"
  "CMakeFiles/manifest_tests.dir/test_manifest_dash.cpp.o.d"
  "CMakeFiles/manifest_tests.dir/test_manifest_fuzz.cpp.o"
  "CMakeFiles/manifest_tests.dir/test_manifest_fuzz.cpp.o.d"
  "CMakeFiles/manifest_tests.dir/test_manifest_hls.cpp.o"
  "CMakeFiles/manifest_tests.dir/test_manifest_hls.cpp.o.d"
  "CMakeFiles/manifest_tests.dir/test_manifest_view.cpp.o"
  "CMakeFiles/manifest_tests.dir/test_manifest_view.cpp.o.d"
  "CMakeFiles/manifest_tests.dir/test_manifest_xml.cpp.o"
  "CMakeFiles/manifest_tests.dir/test_manifest_xml.cpp.o.d"
  "manifest_tests"
  "manifest_tests.pdb"
  "manifest_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manifest_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
