file(REMOVE_RECURSE
  "CMakeFiles/util_tests.dir/test_util_csv.cpp.o"
  "CMakeFiles/util_tests.dir/test_util_csv.cpp.o.d"
  "CMakeFiles/util_tests.dir/test_util_rng.cpp.o"
  "CMakeFiles/util_tests.dir/test_util_rng.cpp.o.d"
  "CMakeFiles/util_tests.dir/test_util_stats.cpp.o"
  "CMakeFiles/util_tests.dir/test_util_stats.cpp.o.d"
  "CMakeFiles/util_tests.dir/test_util_strings.cpp.o"
  "CMakeFiles/util_tests.dir/test_util_strings.cpp.o.d"
  "CMakeFiles/util_tests.dir/test_util_time_series.cpp.o"
  "CMakeFiles/util_tests.dir/test_util_time_series.cpp.o.d"
  "util_tests"
  "util_tests.pdb"
  "util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
