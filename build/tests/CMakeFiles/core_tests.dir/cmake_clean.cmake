file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/test_core_bba.cpp.o"
  "CMakeFiles/core_tests.dir/test_core_bba.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_core_combinations.cpp.o"
  "CMakeFiles/core_tests.dir/test_core_combinations.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_core_compliance.cpp.o"
  "CMakeFiles/core_tests.dir/test_core_compliance.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_core_coordinated.cpp.o"
  "CMakeFiles/core_tests.dir/test_core_coordinated.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_core_joint_abr.cpp.o"
  "CMakeFiles/core_tests.dir/test_core_joint_abr.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_core_mpc.cpp.o"
  "CMakeFiles/core_tests.dir/test_core_mpc.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_core_prefetch.cpp.o"
  "CMakeFiles/core_tests.dir/test_core_prefetch.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
