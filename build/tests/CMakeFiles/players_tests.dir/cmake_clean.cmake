file(REMOVE_RECURSE
  "CMakeFiles/players_tests.dir/test_players_bola.cpp.o"
  "CMakeFiles/players_tests.dir/test_players_bola.cpp.o.d"
  "CMakeFiles/players_tests.dir/test_players_dashjs.cpp.o"
  "CMakeFiles/players_tests.dir/test_players_dashjs.cpp.o.d"
  "CMakeFiles/players_tests.dir/test_players_estimators.cpp.o"
  "CMakeFiles/players_tests.dir/test_players_estimators.cpp.o.d"
  "CMakeFiles/players_tests.dir/test_players_exo_combinations.cpp.o"
  "CMakeFiles/players_tests.dir/test_players_exo_combinations.cpp.o.d"
  "CMakeFiles/players_tests.dir/test_players_exo_legacy.cpp.o"
  "CMakeFiles/players_tests.dir/test_players_exo_legacy.cpp.o.d"
  "CMakeFiles/players_tests.dir/test_players_exoplayer.cpp.o"
  "CMakeFiles/players_tests.dir/test_players_exoplayer.cpp.o.d"
  "CMakeFiles/players_tests.dir/test_players_shaka.cpp.o"
  "CMakeFiles/players_tests.dir/test_players_shaka.cpp.o.d"
  "players_tests"
  "players_tests.pdb"
  "players_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/players_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
