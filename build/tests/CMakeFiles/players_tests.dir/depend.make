# Empty dependencies file for players_tests.
# This may be replaced when dependencies are built.
