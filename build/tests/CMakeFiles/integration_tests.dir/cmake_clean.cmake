file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/test_abandonment.cpp.o"
  "CMakeFiles/integration_tests.dir/test_abandonment.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_edge_cases.cpp.o"
  "CMakeFiles/integration_tests.dir/test_edge_cases.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_experiments.cpp.o"
  "CMakeFiles/integration_tests.dir/test_experiments.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_integration_figures.cpp.o"
  "CMakeFiles/integration_tests.dir/test_integration_figures.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_integration_properties.cpp.o"
  "CMakeFiles/integration_tests.dir/test_integration_properties.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_muxed_player.cpp.o"
  "CMakeFiles/integration_tests.dir/test_muxed_player.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_premium_ladder.cpp.o"
  "CMakeFiles/integration_tests.dir/test_premium_ladder.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_robustness.cpp.o"
  "CMakeFiles/integration_tests.dir/test_robustness.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_seek.cpp.o"
  "CMakeFiles/integration_tests.dir/test_seek.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_split_paths.cpp.o"
  "CMakeFiles/integration_tests.dir/test_split_paths.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
