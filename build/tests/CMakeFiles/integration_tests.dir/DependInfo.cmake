
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abandonment.cpp" "tests/CMakeFiles/integration_tests.dir/test_abandonment.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_abandonment.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/integration_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_experiments.cpp" "tests/CMakeFiles/integration_tests.dir/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_experiments.cpp.o.d"
  "/root/repo/tests/test_integration_figures.cpp" "tests/CMakeFiles/integration_tests.dir/test_integration_figures.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_integration_figures.cpp.o.d"
  "/root/repo/tests/test_integration_properties.cpp" "tests/CMakeFiles/integration_tests.dir/test_integration_properties.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_integration_properties.cpp.o.d"
  "/root/repo/tests/test_muxed_player.cpp" "tests/CMakeFiles/integration_tests.dir/test_muxed_player.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_muxed_player.cpp.o.d"
  "/root/repo/tests/test_premium_ladder.cpp" "tests/CMakeFiles/integration_tests.dir/test_premium_ladder.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_premium_ladder.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/integration_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_seek.cpp" "tests/CMakeFiles/integration_tests.dir/test_seek.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_seek.cpp.o.d"
  "/root/repo/tests/test_split_paths.cpp" "tests/CMakeFiles/integration_tests.dir/test_split_paths.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_split_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/demuxabr_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/demuxabr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/players/CMakeFiles/demuxabr_players.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/demuxabr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/httpsim/CMakeFiles/demuxabr_httpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/manifest/CMakeFiles/demuxabr_manifest.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/demuxabr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/demuxabr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/demuxabr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
