file(REMOVE_RECURSE
  "CMakeFiles/media_tests.dir/test_media_combination.cpp.o"
  "CMakeFiles/media_tests.dir/test_media_combination.cpp.o.d"
  "CMakeFiles/media_tests.dir/test_media_content.cpp.o"
  "CMakeFiles/media_tests.dir/test_media_content.cpp.o.d"
  "CMakeFiles/media_tests.dir/test_media_ladder.cpp.o"
  "CMakeFiles/media_tests.dir/test_media_ladder.cpp.o.d"
  "CMakeFiles/media_tests.dir/test_media_vbr.cpp.o"
  "CMakeFiles/media_tests.dir/test_media_vbr.cpp.o.d"
  "media_tests"
  "media_tests.pdb"
  "media_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
