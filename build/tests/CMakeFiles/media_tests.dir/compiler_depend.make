# Empty compiler generated dependencies file for media_tests.
# This may be replaced when dependencies are built.
