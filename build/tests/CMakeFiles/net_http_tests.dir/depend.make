# Empty dependencies file for net_http_tests.
# This may be replaced when dependencies are built.
