file(REMOVE_RECURSE
  "CMakeFiles/net_http_tests.dir/test_cdn_chain.cpp.o"
  "CMakeFiles/net_http_tests.dir/test_cdn_chain.cpp.o.d"
  "CMakeFiles/net_http_tests.dir/test_httpsim.cpp.o"
  "CMakeFiles/net_http_tests.dir/test_httpsim.cpp.o.d"
  "CMakeFiles/net_http_tests.dir/test_net_link.cpp.o"
  "CMakeFiles/net_http_tests.dir/test_net_link.cpp.o.d"
  "CMakeFiles/net_http_tests.dir/test_net_trace.cpp.o"
  "CMakeFiles/net_http_tests.dir/test_net_trace.cpp.o.d"
  "net_http_tests"
  "net_http_tests.pdb"
  "net_http_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_http_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
