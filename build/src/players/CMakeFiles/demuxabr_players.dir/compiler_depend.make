# Empty compiler generated dependencies file for demuxabr_players.
# This may be replaced when dependencies are built.
