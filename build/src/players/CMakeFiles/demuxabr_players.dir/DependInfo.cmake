
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/players/bola.cpp" "src/players/CMakeFiles/demuxabr_players.dir/bola.cpp.o" "gcc" "src/players/CMakeFiles/demuxabr_players.dir/bola.cpp.o.d"
  "/root/repo/src/players/dashjs.cpp" "src/players/CMakeFiles/demuxabr_players.dir/dashjs.cpp.o" "gcc" "src/players/CMakeFiles/demuxabr_players.dir/dashjs.cpp.o.d"
  "/root/repo/src/players/estimators.cpp" "src/players/CMakeFiles/demuxabr_players.dir/estimators.cpp.o" "gcc" "src/players/CMakeFiles/demuxabr_players.dir/estimators.cpp.o.d"
  "/root/repo/src/players/exo_combinations.cpp" "src/players/CMakeFiles/demuxabr_players.dir/exo_combinations.cpp.o" "gcc" "src/players/CMakeFiles/demuxabr_players.dir/exo_combinations.cpp.o.d"
  "/root/repo/src/players/exo_legacy.cpp" "src/players/CMakeFiles/demuxabr_players.dir/exo_legacy.cpp.o" "gcc" "src/players/CMakeFiles/demuxabr_players.dir/exo_legacy.cpp.o.d"
  "/root/repo/src/players/exoplayer.cpp" "src/players/CMakeFiles/demuxabr_players.dir/exoplayer.cpp.o" "gcc" "src/players/CMakeFiles/demuxabr_players.dir/exoplayer.cpp.o.d"
  "/root/repo/src/players/shaka.cpp" "src/players/CMakeFiles/demuxabr_players.dir/shaka.cpp.o" "gcc" "src/players/CMakeFiles/demuxabr_players.dir/shaka.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/demuxabr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/manifest/CMakeFiles/demuxabr_manifest.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/demuxabr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/demuxabr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/demuxabr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
