file(REMOVE_RECURSE
  "libdemuxabr_players.a"
)
