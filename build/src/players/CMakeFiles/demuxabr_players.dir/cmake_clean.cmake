file(REMOVE_RECURSE
  "CMakeFiles/demuxabr_players.dir/bola.cpp.o"
  "CMakeFiles/demuxabr_players.dir/bola.cpp.o.d"
  "CMakeFiles/demuxabr_players.dir/dashjs.cpp.o"
  "CMakeFiles/demuxabr_players.dir/dashjs.cpp.o.d"
  "CMakeFiles/demuxabr_players.dir/estimators.cpp.o"
  "CMakeFiles/demuxabr_players.dir/estimators.cpp.o.d"
  "CMakeFiles/demuxabr_players.dir/exo_combinations.cpp.o"
  "CMakeFiles/demuxabr_players.dir/exo_combinations.cpp.o.d"
  "CMakeFiles/demuxabr_players.dir/exo_legacy.cpp.o"
  "CMakeFiles/demuxabr_players.dir/exo_legacy.cpp.o.d"
  "CMakeFiles/demuxabr_players.dir/exoplayer.cpp.o"
  "CMakeFiles/demuxabr_players.dir/exoplayer.cpp.o.d"
  "CMakeFiles/demuxabr_players.dir/shaka.cpp.o"
  "CMakeFiles/demuxabr_players.dir/shaka.cpp.o.d"
  "libdemuxabr_players.a"
  "libdemuxabr_players.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demuxabr_players.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
