file(REMOVE_RECURSE
  "CMakeFiles/demuxabr_core.dir/allowed_combinations.cpp.o"
  "CMakeFiles/demuxabr_core.dir/allowed_combinations.cpp.o.d"
  "CMakeFiles/demuxabr_core.dir/balanced_prefetch.cpp.o"
  "CMakeFiles/demuxabr_core.dir/balanced_prefetch.cpp.o.d"
  "CMakeFiles/demuxabr_core.dir/bba_abr.cpp.o"
  "CMakeFiles/demuxabr_core.dir/bba_abr.cpp.o.d"
  "CMakeFiles/demuxabr_core.dir/compliance.cpp.o"
  "CMakeFiles/demuxabr_core.dir/compliance.cpp.o.d"
  "CMakeFiles/demuxabr_core.dir/coordinated_player.cpp.o"
  "CMakeFiles/demuxabr_core.dir/coordinated_player.cpp.o.d"
  "CMakeFiles/demuxabr_core.dir/joint_abr.cpp.o"
  "CMakeFiles/demuxabr_core.dir/joint_abr.cpp.o.d"
  "CMakeFiles/demuxabr_core.dir/mpc_abr.cpp.o"
  "CMakeFiles/demuxabr_core.dir/mpc_abr.cpp.o.d"
  "CMakeFiles/demuxabr_core.dir/muxed_player.cpp.o"
  "CMakeFiles/demuxabr_core.dir/muxed_player.cpp.o.d"
  "libdemuxabr_core.a"
  "libdemuxabr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demuxabr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
