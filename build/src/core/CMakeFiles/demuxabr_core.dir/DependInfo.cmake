
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allowed_combinations.cpp" "src/core/CMakeFiles/demuxabr_core.dir/allowed_combinations.cpp.o" "gcc" "src/core/CMakeFiles/demuxabr_core.dir/allowed_combinations.cpp.o.d"
  "/root/repo/src/core/balanced_prefetch.cpp" "src/core/CMakeFiles/demuxabr_core.dir/balanced_prefetch.cpp.o" "gcc" "src/core/CMakeFiles/demuxabr_core.dir/balanced_prefetch.cpp.o.d"
  "/root/repo/src/core/bba_abr.cpp" "src/core/CMakeFiles/demuxabr_core.dir/bba_abr.cpp.o" "gcc" "src/core/CMakeFiles/demuxabr_core.dir/bba_abr.cpp.o.d"
  "/root/repo/src/core/compliance.cpp" "src/core/CMakeFiles/demuxabr_core.dir/compliance.cpp.o" "gcc" "src/core/CMakeFiles/demuxabr_core.dir/compliance.cpp.o.d"
  "/root/repo/src/core/coordinated_player.cpp" "src/core/CMakeFiles/demuxabr_core.dir/coordinated_player.cpp.o" "gcc" "src/core/CMakeFiles/demuxabr_core.dir/coordinated_player.cpp.o.d"
  "/root/repo/src/core/joint_abr.cpp" "src/core/CMakeFiles/demuxabr_core.dir/joint_abr.cpp.o" "gcc" "src/core/CMakeFiles/demuxabr_core.dir/joint_abr.cpp.o.d"
  "/root/repo/src/core/mpc_abr.cpp" "src/core/CMakeFiles/demuxabr_core.dir/mpc_abr.cpp.o" "gcc" "src/core/CMakeFiles/demuxabr_core.dir/mpc_abr.cpp.o.d"
  "/root/repo/src/core/muxed_player.cpp" "src/core/CMakeFiles/demuxabr_core.dir/muxed_player.cpp.o" "gcc" "src/core/CMakeFiles/demuxabr_core.dir/muxed_player.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/players/CMakeFiles/demuxabr_players.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/demuxabr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/manifest/CMakeFiles/demuxabr_manifest.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/demuxabr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/demuxabr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/demuxabr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
