file(REMOVE_RECURSE
  "libdemuxabr_core.a"
)
