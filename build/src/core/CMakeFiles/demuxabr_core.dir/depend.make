# Empty dependencies file for demuxabr_core.
# This may be replaced when dependencies are built.
