file(REMOVE_RECURSE
  "libdemuxabr_sim.a"
)
