file(REMOVE_RECURSE
  "CMakeFiles/demuxabr_sim.dir/buffer.cpp.o"
  "CMakeFiles/demuxabr_sim.dir/buffer.cpp.o.d"
  "CMakeFiles/demuxabr_sim.dir/metrics.cpp.o"
  "CMakeFiles/demuxabr_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/demuxabr_sim.dir/session.cpp.o"
  "CMakeFiles/demuxabr_sim.dir/session.cpp.o.d"
  "libdemuxabr_sim.a"
  "libdemuxabr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demuxabr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
