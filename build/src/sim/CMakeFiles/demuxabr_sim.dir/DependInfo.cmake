
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/buffer.cpp" "src/sim/CMakeFiles/demuxabr_sim.dir/buffer.cpp.o" "gcc" "src/sim/CMakeFiles/demuxabr_sim.dir/buffer.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/demuxabr_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/demuxabr_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/session.cpp" "src/sim/CMakeFiles/demuxabr_sim.dir/session.cpp.o" "gcc" "src/sim/CMakeFiles/demuxabr_sim.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/demuxabr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/manifest/CMakeFiles/demuxabr_manifest.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/demuxabr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/demuxabr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
