# Empty dependencies file for demuxabr_sim.
# This may be replaced when dependencies are built.
