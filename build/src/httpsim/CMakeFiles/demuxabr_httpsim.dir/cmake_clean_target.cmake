file(REMOVE_RECURSE
  "libdemuxabr_httpsim.a"
)
