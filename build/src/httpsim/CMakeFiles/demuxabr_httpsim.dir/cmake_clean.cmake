file(REMOVE_RECURSE
  "CMakeFiles/demuxabr_httpsim.dir/catalog.cpp.o"
  "CMakeFiles/demuxabr_httpsim.dir/catalog.cpp.o.d"
  "CMakeFiles/demuxabr_httpsim.dir/cdn.cpp.o"
  "CMakeFiles/demuxabr_httpsim.dir/cdn.cpp.o.d"
  "CMakeFiles/demuxabr_httpsim.dir/cdn_chain.cpp.o"
  "CMakeFiles/demuxabr_httpsim.dir/cdn_chain.cpp.o.d"
  "CMakeFiles/demuxabr_httpsim.dir/lru_cache.cpp.o"
  "CMakeFiles/demuxabr_httpsim.dir/lru_cache.cpp.o.d"
  "CMakeFiles/demuxabr_httpsim.dir/workload.cpp.o"
  "CMakeFiles/demuxabr_httpsim.dir/workload.cpp.o.d"
  "libdemuxabr_httpsim.a"
  "libdemuxabr_httpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demuxabr_httpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
