
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/httpsim/catalog.cpp" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/catalog.cpp.o" "gcc" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/catalog.cpp.o.d"
  "/root/repo/src/httpsim/cdn.cpp" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/cdn.cpp.o" "gcc" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/cdn.cpp.o.d"
  "/root/repo/src/httpsim/cdn_chain.cpp" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/cdn_chain.cpp.o" "gcc" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/cdn_chain.cpp.o.d"
  "/root/repo/src/httpsim/lru_cache.cpp" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/lru_cache.cpp.o" "gcc" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/lru_cache.cpp.o.d"
  "/root/repo/src/httpsim/workload.cpp" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/workload.cpp.o" "gcc" "src/httpsim/CMakeFiles/demuxabr_httpsim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/demuxabr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/demuxabr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
