# Empty dependencies file for demuxabr_httpsim.
# This may be replaced when dependencies are built.
