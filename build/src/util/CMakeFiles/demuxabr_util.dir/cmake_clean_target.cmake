file(REMOVE_RECURSE
  "libdemuxabr_util.a"
)
