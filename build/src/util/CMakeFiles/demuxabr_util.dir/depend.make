# Empty dependencies file for demuxabr_util.
# This may be replaced when dependencies are built.
