file(REMOVE_RECURSE
  "CMakeFiles/demuxabr_util.dir/csv.cpp.o"
  "CMakeFiles/demuxabr_util.dir/csv.cpp.o.d"
  "CMakeFiles/demuxabr_util.dir/logging.cpp.o"
  "CMakeFiles/demuxabr_util.dir/logging.cpp.o.d"
  "CMakeFiles/demuxabr_util.dir/rng.cpp.o"
  "CMakeFiles/demuxabr_util.dir/rng.cpp.o.d"
  "CMakeFiles/demuxabr_util.dir/stats.cpp.o"
  "CMakeFiles/demuxabr_util.dir/stats.cpp.o.d"
  "CMakeFiles/demuxabr_util.dir/strings.cpp.o"
  "CMakeFiles/demuxabr_util.dir/strings.cpp.o.d"
  "CMakeFiles/demuxabr_util.dir/time_series.cpp.o"
  "CMakeFiles/demuxabr_util.dir/time_series.cpp.o.d"
  "libdemuxabr_util.a"
  "libdemuxabr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demuxabr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
