# Empty compiler generated dependencies file for demuxabr_media.
# This may be replaced when dependencies are built.
