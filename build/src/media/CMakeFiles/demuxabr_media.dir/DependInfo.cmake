
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/combination.cpp" "src/media/CMakeFiles/demuxabr_media.dir/combination.cpp.o" "gcc" "src/media/CMakeFiles/demuxabr_media.dir/combination.cpp.o.d"
  "/root/repo/src/media/content.cpp" "src/media/CMakeFiles/demuxabr_media.dir/content.cpp.o" "gcc" "src/media/CMakeFiles/demuxabr_media.dir/content.cpp.o.d"
  "/root/repo/src/media/ladder.cpp" "src/media/CMakeFiles/demuxabr_media.dir/ladder.cpp.o" "gcc" "src/media/CMakeFiles/demuxabr_media.dir/ladder.cpp.o.d"
  "/root/repo/src/media/vbr_model.cpp" "src/media/CMakeFiles/demuxabr_media.dir/vbr_model.cpp.o" "gcc" "src/media/CMakeFiles/demuxabr_media.dir/vbr_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/demuxabr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
