file(REMOVE_RECURSE
  "libdemuxabr_media.a"
)
