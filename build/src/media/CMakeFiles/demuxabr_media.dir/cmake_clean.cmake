file(REMOVE_RECURSE
  "CMakeFiles/demuxabr_media.dir/combination.cpp.o"
  "CMakeFiles/demuxabr_media.dir/combination.cpp.o.d"
  "CMakeFiles/demuxabr_media.dir/content.cpp.o"
  "CMakeFiles/demuxabr_media.dir/content.cpp.o.d"
  "CMakeFiles/demuxabr_media.dir/ladder.cpp.o"
  "CMakeFiles/demuxabr_media.dir/ladder.cpp.o.d"
  "CMakeFiles/demuxabr_media.dir/vbr_model.cpp.o"
  "CMakeFiles/demuxabr_media.dir/vbr_model.cpp.o.d"
  "libdemuxabr_media.a"
  "libdemuxabr_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demuxabr_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
