file(REMOVE_RECURSE
  "CMakeFiles/demuxabr_manifest.dir/builder.cpp.o"
  "CMakeFiles/demuxabr_manifest.dir/builder.cpp.o.d"
  "CMakeFiles/demuxabr_manifest.dir/dash_mpd.cpp.o"
  "CMakeFiles/demuxabr_manifest.dir/dash_mpd.cpp.o.d"
  "CMakeFiles/demuxabr_manifest.dir/hls_playlist.cpp.o"
  "CMakeFiles/demuxabr_manifest.dir/hls_playlist.cpp.o.d"
  "CMakeFiles/demuxabr_manifest.dir/view.cpp.o"
  "CMakeFiles/demuxabr_manifest.dir/view.cpp.o.d"
  "CMakeFiles/demuxabr_manifest.dir/xml.cpp.o"
  "CMakeFiles/demuxabr_manifest.dir/xml.cpp.o.d"
  "libdemuxabr_manifest.a"
  "libdemuxabr_manifest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demuxabr_manifest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
