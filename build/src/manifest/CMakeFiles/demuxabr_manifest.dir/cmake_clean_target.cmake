file(REMOVE_RECURSE
  "libdemuxabr_manifest.a"
)
