
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/manifest/builder.cpp" "src/manifest/CMakeFiles/demuxabr_manifest.dir/builder.cpp.o" "gcc" "src/manifest/CMakeFiles/demuxabr_manifest.dir/builder.cpp.o.d"
  "/root/repo/src/manifest/dash_mpd.cpp" "src/manifest/CMakeFiles/demuxabr_manifest.dir/dash_mpd.cpp.o" "gcc" "src/manifest/CMakeFiles/demuxabr_manifest.dir/dash_mpd.cpp.o.d"
  "/root/repo/src/manifest/hls_playlist.cpp" "src/manifest/CMakeFiles/demuxabr_manifest.dir/hls_playlist.cpp.o" "gcc" "src/manifest/CMakeFiles/demuxabr_manifest.dir/hls_playlist.cpp.o.d"
  "/root/repo/src/manifest/view.cpp" "src/manifest/CMakeFiles/demuxabr_manifest.dir/view.cpp.o" "gcc" "src/manifest/CMakeFiles/demuxabr_manifest.dir/view.cpp.o.d"
  "/root/repo/src/manifest/xml.cpp" "src/manifest/CMakeFiles/demuxabr_manifest.dir/xml.cpp.o" "gcc" "src/manifest/CMakeFiles/demuxabr_manifest.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/demuxabr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/demuxabr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
