# Empty dependencies file for demuxabr_manifest.
# This may be replaced when dependencies are built.
