file(REMOVE_RECURSE
  "libdemuxabr_experiments.a"
)
