file(REMOVE_RECURSE
  "CMakeFiles/demuxabr_experiments.dir/scenarios.cpp.o"
  "CMakeFiles/demuxabr_experiments.dir/scenarios.cpp.o.d"
  "CMakeFiles/demuxabr_experiments.dir/tables.cpp.o"
  "CMakeFiles/demuxabr_experiments.dir/tables.cpp.o.d"
  "libdemuxabr_experiments.a"
  "libdemuxabr_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demuxabr_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
