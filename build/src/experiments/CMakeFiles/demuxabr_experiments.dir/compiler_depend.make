# Empty compiler generated dependencies file for demuxabr_experiments.
# This may be replaced when dependencies are built.
