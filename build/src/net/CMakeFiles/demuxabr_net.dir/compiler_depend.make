# Empty compiler generated dependencies file for demuxabr_net.
# This may be replaced when dependencies are built.
