file(REMOVE_RECURSE
  "CMakeFiles/demuxabr_net.dir/bandwidth_trace.cpp.o"
  "CMakeFiles/demuxabr_net.dir/bandwidth_trace.cpp.o.d"
  "CMakeFiles/demuxabr_net.dir/link.cpp.o"
  "CMakeFiles/demuxabr_net.dir/link.cpp.o.d"
  "libdemuxabr_net.a"
  "libdemuxabr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demuxabr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
