file(REMOVE_RECURSE
  "libdemuxabr_net.a"
)
