file(REMOVE_RECURSE
  "CMakeFiles/figure_data.dir/figure_data.cpp.o"
  "CMakeFiles/figure_data.dir/figure_data.cpp.o.d"
  "figure_data"
  "figure_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
