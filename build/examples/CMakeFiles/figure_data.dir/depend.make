# Empty dependencies file for figure_data.
# This may be replaced when dependencies are built.
