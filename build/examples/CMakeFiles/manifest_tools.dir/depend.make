# Empty dependencies file for manifest_tools.
# This may be replaced when dependencies are built.
