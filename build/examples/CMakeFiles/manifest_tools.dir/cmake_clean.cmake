file(REMOVE_RECURSE
  "CMakeFiles/manifest_tools.dir/manifest_tools.cpp.o"
  "CMakeFiles/manifest_tools.dir/manifest_tools.cpp.o.d"
  "manifest_tools"
  "manifest_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manifest_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
