file(REMOVE_RECURSE
  "CMakeFiles/player_comparison.dir/player_comparison.cpp.o"
  "CMakeFiles/player_comparison.dir/player_comparison.cpp.o.d"
  "player_comparison"
  "player_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/player_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
