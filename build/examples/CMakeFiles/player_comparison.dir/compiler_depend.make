# Empty compiler generated dependencies file for player_comparison.
# This may be replaced when dependencies are built.
