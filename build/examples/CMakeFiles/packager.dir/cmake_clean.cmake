file(REMOVE_RECURSE
  "CMakeFiles/packager.dir/packager.cpp.o"
  "CMakeFiles/packager.dir/packager.cpp.o.d"
  "packager"
  "packager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
