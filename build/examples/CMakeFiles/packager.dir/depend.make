# Empty dependencies file for packager.
# This may be replaced when dependencies are built.
