# Empty compiler generated dependencies file for cdn_simulation.
# This may be replaced when dependencies are built.
