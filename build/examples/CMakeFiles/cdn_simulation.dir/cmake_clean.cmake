file(REMOVE_RECURSE
  "CMakeFiles/cdn_simulation.dir/cdn_simulation.cpp.o"
  "CMakeFiles/cdn_simulation.dir/cdn_simulation.cpp.o.d"
  "cdn_simulation"
  "cdn_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
