# Empty compiler generated dependencies file for bench_best_practices.
# This may be replaced when dependencies are built.
