file(REMOVE_RECURSE
  "CMakeFiles/bench_best_practices.dir/bench_best_practices.cpp.o"
  "CMakeFiles/bench_best_practices.dir/bench_best_practices.cpp.o.d"
  "bench_best_practices"
  "bench_best_practices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_best_practices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
