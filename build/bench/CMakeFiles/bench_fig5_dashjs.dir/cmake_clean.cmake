file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_dashjs.dir/bench_fig5_dashjs.cpp.o"
  "CMakeFiles/bench_fig5_dashjs.dir/bench_fig5_dashjs.cpp.o.d"
  "bench_fig5_dashjs"
  "bench_fig5_dashjs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_dashjs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
