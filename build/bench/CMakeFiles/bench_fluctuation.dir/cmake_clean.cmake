file(REMOVE_RECURSE
  "CMakeFiles/bench_fluctuation.dir/bench_fluctuation.cpp.o"
  "CMakeFiles/bench_fluctuation.dir/bench_fluctuation.cpp.o.d"
  "bench_fluctuation"
  "bench_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
