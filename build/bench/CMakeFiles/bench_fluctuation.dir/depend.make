# Empty dependencies file for bench_fluctuation.
# This may be replaced when dependencies are built.
