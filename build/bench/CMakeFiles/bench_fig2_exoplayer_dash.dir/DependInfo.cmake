
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_exoplayer_dash.cpp" "bench/CMakeFiles/bench_fig2_exoplayer_dash.dir/bench_fig2_exoplayer_dash.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_exoplayer_dash.dir/bench_fig2_exoplayer_dash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/demuxabr_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/demuxabr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/players/CMakeFiles/demuxabr_players.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/demuxabr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/httpsim/CMakeFiles/demuxabr_httpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/manifest/CMakeFiles/demuxabr_manifest.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/demuxabr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/demuxabr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/demuxabr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
