file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_exoplayer_dash.dir/bench_fig2_exoplayer_dash.cpp.o"
  "CMakeFiles/bench_fig2_exoplayer_dash.dir/bench_fig2_exoplayer_dash.cpp.o.d"
  "bench_fig2_exoplayer_dash"
  "bench_fig2_exoplayer_dash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_exoplayer_dash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
