# Empty dependencies file for bench_fig2_exoplayer_dash.
# This may be replaced when dependencies are built.
