# Empty dependencies file for bench_split_paths.
# This may be replaced when dependencies are built.
