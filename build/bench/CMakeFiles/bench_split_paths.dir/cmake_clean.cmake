file(REMOVE_RECURSE
  "CMakeFiles/bench_split_paths.dir/bench_split_paths.cpp.o"
  "CMakeFiles/bench_split_paths.dir/bench_split_paths.cpp.o.d"
  "bench_split_paths"
  "bench_split_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_split_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
