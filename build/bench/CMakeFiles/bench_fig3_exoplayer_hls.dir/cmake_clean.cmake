file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_exoplayer_hls.dir/bench_fig3_exoplayer_hls.cpp.o"
  "CMakeFiles/bench_fig3_exoplayer_hls.dir/bench_fig3_exoplayer_hls.cpp.o.d"
  "bench_fig3_exoplayer_hls"
  "bench_fig3_exoplayer_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_exoplayer_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
