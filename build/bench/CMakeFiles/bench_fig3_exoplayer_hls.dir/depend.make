# Empty dependencies file for bench_fig3_exoplayer_hls.
# This may be replaced when dependencies are built.
