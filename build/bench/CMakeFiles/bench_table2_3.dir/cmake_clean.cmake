file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_3.dir/bench_table2_3.cpp.o"
  "CMakeFiles/bench_table2_3.dir/bench_table2_3.cpp.o.d"
  "bench_table2_3"
  "bench_table2_3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
