# Empty compiler generated dependencies file for bench_table2_3.
# This may be replaced when dependencies are built.
