file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_shaka.dir/bench_fig4_shaka.cpp.o"
  "CMakeFiles/bench_fig4_shaka.dir/bench_fig4_shaka.cpp.o.d"
  "bench_fig4_shaka"
  "bench_fig4_shaka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_shaka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
