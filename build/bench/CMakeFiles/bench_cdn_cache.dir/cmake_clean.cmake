file(REMOVE_RECURSE
  "CMakeFiles/bench_cdn_cache.dir/bench_cdn_cache.cpp.o"
  "CMakeFiles/bench_cdn_cache.dir/bench_cdn_cache.cpp.o.d"
  "bench_cdn_cache"
  "bench_cdn_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cdn_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
