# Empty dependencies file for bench_cdn_cache.
# This may be replaced when dependencies are built.
